//! The readiness-driven I/O core: N event loops multiplexing many
//! connections over a shared handler pool.
//!
//! ```text
//!            ┌ loop 0 (owns the listener) ── epoll/poll ── conns…
//! clients ──►│ loop 1 ── epoll/poll ── conns…        │ parsed lines
//!            └ loop … ──────────────────────────────▼
//!                 ▲ completions (self-wake pipe)   shared job queue
//!                 └─────────────────────────── M handler workers
//! ```
//!
//! Each loop owns its connections outright: it reads newline-delimited
//! requests as readiness allows — many per wakeup, so clients may
//! pipeline — hands complete lines to the worker pool, and flushes
//! finished responses back, possibly out of request order (clients
//! match responses to requests by the echoed `id`). Backpressure is per
//! connection: once `max_pipeline` requests are in flight the loop
//! stops reading that socket until answers drain, letting TCP push back
//! on the client. The accept path lives on loop 0 and hands new
//! connections round-robin to the loops over their wake pipes; past
//! `max_connections` a connection is answered with the structured
//! `overloaded` error and closed.
//!
//! Shutdown (a wire `shutdown` request or [`EventHandle::shutdown`])
//! stops accepting and reading, lets in-flight work finish within
//! `drain_deadline`, flushes every pending response, then persists the
//! cache — the same graceful-drain contract as the threaded core in
//! [`crate::server`], which stays selectable via `--io threaded`.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use samm_core::cache::EnumCache;

use crate::cluster::{Cluster, ClusterConfig};
use crate::handler::{self, ServerState};
use crate::protocol::{parse_envelope, Request};
use crate::server::{self, ServerConfig};
use crate::sys::{Event, Interest, Poller, PollerKind};
use crate::telemetry::{LoopGauges, Telemetry};

/// Event-core construction parameters, layered over the shared
/// [`ServerConfig`] (cache geometry, budget, persistence, telemetry).
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Event-loop threads. Loop 0 also owns the listener.
    pub loops: usize,
    /// Open connections across all loops before new ones are rejected
    /// with the structured `overloaded` error.
    pub max_connections: usize,
    /// In-flight requests per connection before the loop stops reading
    /// that socket (pipelining backpressure).
    pub max_pipeline: usize,
    /// How long a graceful drain waits for in-flight work and pending
    /// writes before forcing connections closed.
    pub drain_deadline: Duration,
    /// Readiness backend.
    pub poller: PollerKind,
    /// Cluster topology, when serving as a ring member.
    pub cluster: Option<ClusterConfig>,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            loops: 1,
            max_connections: 10_000,
            max_pipeline: 64,
            drain_deadline: Duration::from_secs(5),
            poller: PollerKind::default_for_platform(),
            cluster: None,
        }
    }
}

/// Poller token of the per-loop wake pipe.
const WAKE_TOKEN: u64 = 0;
/// Poller token of the listener (loop 0 only).
const LISTEN_TOKEN: u64 = 1;
/// First connection token.
const FIRST_CONN_TOKEN: u64 = 2;
/// Poll tick: idle scans and drain checks run at least this often.
const TICK: Duration = Duration::from_millis(500);
/// Hard cap on one request line (batch envelopes included); a longer
/// unterminated line closes the connection as a framing violation.
const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request line travelling to the worker pool.
struct Job {
    loop_id: usize,
    conn_token: u64,
    line: String,
}

/// One finished response travelling back to its loop.
struct Completion {
    conn_token: u64,
    response: String,
    /// The request was `shutdown`: flush this response, then drain.
    begin_drain: bool,
}

/// The cross-thread face of one event loop.
struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    /// New connections handed over by the accept path.
    inbox: Mutex<Vec<TcpStream>>,
    /// Write end of the loop's self-wake pipe.
    wake: Mutex<UnixStream>,
    gauges: Arc<LoopGauges>,
}

impl LoopShared {
    /// Nudges the loop out of its poller wait. A full pipe is fine —
    /// the loop is already due to wake.
    fn wake(&self) {
        let mut wake = self.wake.lock().expect("wake pipe poisoned");
        let _ = wake.write(&[1u8]);
    }
}

/// State shared by every loop, worker, and the handle.
struct EventShared {
    state: ServerState,
    loops: Vec<LoopShared>,
    jobs: Mutex<VecDeque<Job>>,
    jobs_available: Condvar,
    draining: AtomicBool,
    loops_alive: AtomicUsize,
    conn_count: AtomicUsize,
    max_connections: usize,
    max_pipeline: usize,
    read_timeout: Duration,
    drain_deadline: Duration,
    retry_after_ms: u64,
}

impl EventShared {
    /// Raises the drain flag and wakes every loop and worker.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for loop_shared in &self.loops {
            loop_shared.wake();
        }
        // The lock round-trip orders the flag store against workers
        // about to sleep on the condvar.
        drop(self.jobs.lock().expect("jobs poisoned"));
        self.jobs_available.notify_all();
    }
}

/// A running event-core server; dropping the handle does NOT stop it —
/// call [`EventHandle::shutdown`], or send a wire `shutdown` request
/// and [`EventHandle::join`].
pub struct EventHandle {
    addr: SocketAddr,
    prom_addr: Option<SocketAddr>,
    shared: Arc<EventShared>,
    loops: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    prom: Option<JoinHandle<()>>,
    persist_path: Option<PathBuf>,
}

impl std::fmt::Debug for EventHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventHandle")
            .field("addr", &self.addr)
            .field("loops", &self.loops.len())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl EventHandle {
    /// The bound serving address (with the OS-chosen port when the
    /// config asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus HTTP address, when `prom_addr` was
    /// configured.
    pub fn prom_addr(&self) -> Option<SocketAddr> {
        self.prom_addr
    }

    /// Initiates a graceful drain and waits for every thread to exit,
    /// persisting the cache when configured.
    ///
    /// # Errors
    ///
    /// Propagates cache persistence failures; thread panics surface as
    /// [`std::io::ErrorKind::Other`].
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.shared.begin_drain();
        self.join_inner()
    }

    /// Waits for the server to drain after a wire `shutdown` request,
    /// then persists the cache when configured.
    ///
    /// # Errors
    ///
    /// As for [`EventHandle::shutdown`].
    pub fn join(mut self) -> std::io::Result<()> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> std::io::Result<()> {
        for handle in self.loops.drain(..) {
            handle
                .join()
                .map_err(|_| std::io::Error::other("event loop panicked"))?;
        }
        for handle in self.workers.drain(..) {
            handle
                .join()
                .map_err(|_| std::io::Error::other("worker thread panicked"))?;
        }
        if let Some(prom) = self.prom.take() {
            if let Some(addr) = self.prom_addr {
                // Unblock the listener's accept so it can see the flag.
                server::wake_acceptor(addr);
            }
            prom.join()
                .map_err(|_| std::io::Error::other("prom thread panicked"))?;
        }
        if let Some(path) = &self.persist_path {
            self.shared.state.cache.save_to(path)?;
        }
        Ok(())
    }
}

/// Binds the listener and spawns the event loops, the worker pool, and
/// (when configured) the Prometheus listener.
///
/// # Errors
///
/// Propagates bind and poller-construction failures. A configured
/// persistence file that does not exist yet is not an error (first
/// run).
pub fn start(config: ServerConfig, event: EventConfig) -> std::io::Result<EventHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cache = EnumCache::with_shards(config.cache_shards.max(1), config.cache_capacity.max(1));
    if let Some(path) = &config.persist_path {
        if path.exists() {
            cache.load_from(path)?;
        }
    }
    let mut telemetry = match &config.slow_log {
        Some(path) => Telemetry::with_slow_log(
            path.clone(),
            config.slow_threshold,
            config.slow_log_max_bytes,
        )?,
        None => Telemetry::default(),
    };
    crate::server::attach_trace_log(&mut telemetry, &config)?;
    let mut state = ServerState::with_telemetry(cache, config.budget, telemetry, config.observe);
    if let Some(cluster_config) = event.cluster.clone() {
        state.set_cluster(Arc::new(Cluster::new(cluster_config)));
    }

    let prom_listener = config
        .prom_addr
        .as_deref()
        .map(TcpListener::bind)
        .transpose()?;
    let prom_addr = prom_listener
        .as_ref()
        .map(TcpListener::local_addr)
        .transpose()?;

    // Build each loop's poller and wake pipe up front so a failure
    // aborts before any thread spawns.
    let loop_count = event.loops.max(1);
    let mut pollers = Vec::with_capacity(loop_count);
    let mut wake_readers = Vec::with_capacity(loop_count);
    let mut loop_shareds = Vec::with_capacity(loop_count);
    for _ in 0..loop_count {
        let mut poller = Poller::new(event.poller)?;
        let (wake_write, wake_read) = UnixStream::pair()?;
        wake_read.set_nonblocking(true)?;
        wake_write.set_nonblocking(true)?;
        poller.register(wake_read.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;
        loop_shareds.push(LoopShared {
            completions: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
            wake: Mutex::new(wake_write),
            gauges: state.telemetry.register_loop(),
        });
        pollers.push(poller);
        wake_readers.push(wake_read);
    }

    let shared = Arc::new(EventShared {
        state,
        loops: loop_shareds,
        jobs: Mutex::new(VecDeque::new()),
        jobs_available: Condvar::new(),
        draining: AtomicBool::new(false),
        loops_alive: AtomicUsize::new(loop_count),
        conn_count: AtomicUsize::new(0),
        max_connections: event.max_connections.max(1),
        max_pipeline: event.max_pipeline.max(1),
        read_timeout: config.read_timeout,
        drain_deadline: event.drain_deadline,
        retry_after_ms: 50,
    });

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("samm-serve-handler-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    let mut listener = Some(listener);
    let loops = pollers
        .into_iter()
        .zip(wake_readers)
        .enumerate()
        .map(|(loop_id, (poller, wake_read))| {
            let shared = Arc::clone(&shared);
            let listener = if loop_id == 0 { listener.take() } else { None };
            std::thread::Builder::new()
                .name(format!("samm-serve-loop-{loop_id}"))
                .spawn(move || EventLoop::new(loop_id, shared, poller, wake_read, listener).run())
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    let prom = prom_listener
        .map(|prom_listener| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("samm-serve-prom".to_owned())
                .spawn(move || {
                    server::prom_loop_shared(&prom_listener, &shared.state, || {
                        shared.draining.load(Ordering::SeqCst)
                    });
                })
        })
        .transpose()?;

    Ok(EventHandle {
        addr,
        prom_addr,
        shared,
        loops,
        workers,
        prom,
        persist_path: config.persist_path,
    })
}

/// One open connection owned by a loop.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Lines dispatched to the worker pool and not yet answered.
    inflight: usize,
    last_activity: Instant,
    /// Read side finished (EOF or fatal read): flush, then close.
    closing: bool,
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: 0,
            last_activity: Instant::now(),
            closing: false,
            interest: Interest::READ,
        }
    }

    fn has_pending_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    fn is_quiescent(&self) -> bool {
        self.inflight == 0 && !self.has_pending_write()
    }

    /// Reads until `WouldBlock` or EOF. Returns `true` when the
    /// connection is dead (reset, or an oversized unterminated line).
    fn fill_read_buf(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: no more requests; flush what remains.
                    self.closing = true;
                    return false;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    if self.read_buf.len() > MAX_LINE_BYTES && !self.read_buf.contains(&b'\n') {
                        return true;
                    }
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }

    fn flush_writes(&mut self) -> std::io::Result<()> {
        while self.has_pending_write() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(std::io::Error::from(IoErrorKind::WriteZero)),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if !self.has_pending_write() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        Ok(())
    }
}

struct EventLoop {
    id: usize,
    shared: Arc<EventShared>,
    poller: Poller,
    wake_read: UnixStream,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    next_loop: usize,
    drain_started: Option<Instant>,
    last_idle_scan: Instant,
}

impl EventLoop {
    fn new(
        id: usize,
        shared: Arc<EventShared>,
        poller: Poller,
        wake_read: UnixStream,
        listener: Option<TcpListener>,
    ) -> EventLoop {
        EventLoop {
            id,
            shared,
            poller,
            wake_read,
            listener,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            next_loop: 0,
            drain_started: None,
            last_idle_scan: Instant::now(),
        }
    }

    fn gauges(&self) -> &Arc<LoopGauges> {
        &self.shared.loops[self.id].gauges
    }

    fn run(mut self) {
        if let Some(listener) = &self.listener {
            if self
                .poller
                .register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::READ)
                .is_err()
            {
                // Without an accept path the server is useless; drain.
                self.shared.begin_drain();
            }
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                // Poller failure is unrecoverable for this loop.
                self.shared.begin_drain();
            }
            for &event in &events {
                match event.token {
                    WAKE_TOKEN => self.drain_wake_pipe(),
                    LISTEN_TOKEN => self.accept_ready(),
                    token => self.conn_ready(token, event),
                }
            }
            self.apply_completions();
            self.adopt_inbox();
            self.scan_idle();
            if self.shared.draining.load(Ordering::SeqCst) && self.drain() {
                break;
            }
        }
        // The last loop out wakes the workers so they can observe an
        // empty queue with no remaining producers and exit.
        if self.shared.loops_alive.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.jobs_available.notify_all();
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.wake_read.read(&mut buf), Ok(n) if n > 0) {}
    }

    /// The accept path: loop 0 pulls connections until `WouldBlock`,
    /// spreading them round-robin so every loop's share stays balanced.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == IoErrorKind::WouldBlock => return,
                Err(_) => continue,
            };
            if self.shared.draining.load(Ordering::SeqCst) {
                // A late connection during drain: drop it.
                continue;
            }
            if self.shared.conn_count.load(Ordering::SeqCst) >= self.shared.max_connections {
                self.shared
                    .state
                    .counters
                    .overloaded
                    .fetch_add(1, Ordering::Relaxed);
                server::reject_overloaded(stream, self.shared.retry_after_ms);
                continue;
            }
            self.shared.conn_count.fetch_add(1, Ordering::SeqCst);
            let target = self.next_loop % self.shared.loops.len();
            self.next_loop = self.next_loop.wrapping_add(1);
            if target == self.id {
                self.adopt(stream);
            } else {
                self.shared.loops[target]
                    .inbox
                    .lock()
                    .expect("inbox poisoned")
                    .push(stream);
                self.shared.loops[target].wake();
            }
        }
    }

    /// Takes ownership of connections the accept path handed over.
    fn adopt_inbox(&mut self) {
        let pending: Vec<TcpStream> = {
            let mut inbox = self.shared.loops[self.id]
                .inbox
                .lock()
                .expect("inbox poisoned");
            inbox.drain(..).collect()
        };
        for stream in pending {
            self.adopt(stream);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        // One-line responses must leave immediately; Nagle + delayed
        // ACK otherwise adds ~40 ms per round trip on loopback.
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            self.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let conn = Conn::new(stream);
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, conn.interest)
            .is_err()
        {
            self.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.conns.insert(token, conn);
        self.gauges().connections.fetch_add(1, Ordering::Relaxed);
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
            self.gauges().connections.fetch_sub(1, Ordering::Relaxed);
            // Jobs still in flight for this connection complete anyway;
            // their completions are dropped in finish_completion.
        }
    }

    fn conn_ready(&mut self, token: u64, event: Event) {
        let dead = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.last_activity = Instant::now();
            let mut dead = false;
            if event.readable && !conn.closing {
                dead = conn.fill_read_buf();
            }
            if event.writable {
                dead = dead || conn.flush_writes().is_err();
            }
            // A pure hangup (no data left) means the peer is gone.
            dead || (event.hangup && !event.readable)
        };
        if dead {
            self.close_conn(token);
            return;
        }
        self.pump_conn(token);
    }

    /// Extracts complete lines as pipeline capacity allows, dispatches
    /// them to the worker pool, and refreshes poller interest. Also the
    /// point where a flushed-out, EOF'd connection is finally closed.
    fn pump_conn(&mut self, token: u64) {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let max_pipeline = self.shared.max_pipeline;
        let mut jobs = Vec::new();
        let closed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while !draining && conn.inflight < max_pipeline {
                let Some(newline) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                    break;
                };
                let line_bytes: Vec<u8> = conn.read_buf.drain(..=newline).collect();
                let line = String::from_utf8_lossy(&line_bytes).trim().to_owned();
                if line.is_empty() {
                    continue;
                }
                conn.inflight += 1;
                jobs.push(Job {
                    loop_id: self.id,
                    conn_token: token,
                    line,
                });
            }
            conn.closing && conn.is_quiescent()
        };
        if closed {
            self.close_conn(token);
            return;
        }
        if !jobs.is_empty() {
            self.gauges()
                .inflight
                .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            let mut queue = self.shared.jobs.lock().expect("jobs poisoned");
            queue.extend(jobs);
            let depth = queue.len() as u64;
            drop(queue);
            self.shared
                .state
                .telemetry
                .queue_depth
                .store(depth, Ordering::Relaxed);
            self.shared.jobs_available.notify_all();
        }
        self.refresh_interest(token);
    }

    fn refresh_interest(&mut self, token: u64) {
        let max_pipeline = self.shared.max_pipeline;
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let wanted = Interest {
            read: !conn.closing && !draining && conn.inflight < max_pipeline,
            write: conn.has_pending_write(),
        };
        if wanted != conn.interest {
            conn.interest = wanted;
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, wanted).is_err() {
                self.close_conn(token);
            }
        }
    }

    /// Applies finished responses: append to the write buffer, flush
    /// opportunistically, update interest, honour shutdown.
    fn apply_completions(&mut self) {
        let completions: Vec<Completion> = {
            let mut pending = self.shared.loops[self.id]
                .completions
                .lock()
                .expect("completions poisoned");
            pending.drain(..).collect()
        };
        for completion in completions {
            self.gauges().inflight.fetch_sub(1, Ordering::Relaxed);
            self.finish_completion(&completion);
            if completion.begin_drain {
                // The shutdown response is buffered (drain flushes it);
                // now stop the world.
                self.shared.begin_drain();
            }
        }
    }

    fn finish_completion(&mut self, completion: &Completion) {
        let token = completion.conn_token;
        let flush_failed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                // The connection died while the request was in flight.
                return;
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            conn.write_buf
                .extend_from_slice(completion.response.as_bytes());
            conn.write_buf.push(b'\n');
            conn.flush_writes().is_err()
        };
        if flush_failed {
            self.close_conn(token);
            return;
        }
        // A freed pipeline slot may unblock buffered lines; EOF'd
        // connections close here once quiescent.
        self.pump_conn(token);
    }

    /// Closes connections idle past the read timeout (with nothing in
    /// flight), at most once per tick.
    fn scan_idle(&mut self) {
        if self.last_idle_scan.elapsed() < TICK {
            return;
        }
        self.last_idle_scan = Instant::now();
        let timeout = self.shared.read_timeout;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.inflight == 0 && conn.last_activity.elapsed() >= timeout)
            .map(|(&token, _)| token)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    /// One drain step. Returns `true` when this loop may exit: every
    /// connection quiescent and flushed, or the deadline passed.
    fn drain(&mut self) -> bool {
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(listener.as_raw_fd());
        }
        let started = *self.drain_started.get_or_insert_with(Instant::now);
        // Stop reading everywhere; keep write interest for flushes.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.refresh_interest(token);
        }
        let expired = started.elapsed() >= self.shared.drain_deadline;
        if expired || self.conns.values().all(Conn::is_quiescent) {
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                self.close_conn(token);
            }
            return true;
        }
        false
    }
}

/// A worker: pops lines, executes them against the shared state, and
/// pushes completions back to the owning loop.
fn worker_loop(shared: &Arc<EventShared>) {
    loop {
        let job = {
            let mut queue = shared.jobs.lock().expect("jobs poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared
                        .state
                        .telemetry
                        .queue_depth
                        .store(queue.len() as u64, Ordering::Relaxed);
                    break Some(job);
                }
                // The loops are the producers: exit only when none
                // remain (drain finished) and the queue is empty.
                if shared.loops_alive.load(Ordering::SeqCst) == 0 {
                    break None;
                }
                queue = shared.jobs_available.wait(queue).expect("jobs poisoned");
            }
        };
        let Some(job) = job else { return };
        let (response, begin_drain) = execute_line(&shared.state, &job.line);
        shared.loops[job.loop_id]
            .completions
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                conn_token: job.conn_token,
                response,
                begin_drain,
            });
        shared.loops[job.loop_id].wake();
    }
}

/// Parses and executes one request line; the bool asks the server to
/// drain (the line was a `shutdown` request).
fn execute_line(state: &ServerState, line: &str) -> (String, bool) {
    match parse_envelope(line) {
        Ok(envelope) => {
            let response = handler::handle_envelope(state, &envelope);
            let drain = envelope.request == Request::Shutdown;
            (response.to_string(), drain)
        }
        Err(err) => {
            // Count the attempt too: `requests` tracks lines seen.
            state.counters.requests.fetch_add(1, Ordering::Relaxed);
            (handler::error_response(state, &err).to_string(), false)
        }
    }
}
