//! Server-side telemetry: per-request-kind latency histograms (split by
//! cache hit / miss / overbudget), monitoring-request accounting, a
//! queue-depth gauge, aggregated enumeration counters, a slow-query
//! JSONL log, and the Prometheus text exposition.
//!
//! Built from the [`samm_core::telemetry`] primitives; everything here
//! is lock-free on the request path (one histogram `record` plus a few
//! relaxed counter increments per request). The exposition is rendered
//! on demand by [`Telemetry::render_prom`] and validated end to end by
//! [`samm_core::telemetry::prom::check`] in CI.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use samm_core::cache::{CacheStats, ShardStats};
use samm_core::enumerate::EnumStats;
use samm_core::obs::Obs;
use samm_core::telemetry::trace::SpanSink;
use samm_core::telemetry::{
    jsonl_event, EventSink, FieldValue, Histogram, HistogramSnapshot, JsonlLog, RateCounter,
    RequestIdGen, LATENCY_LE_NANOS,
};

use crate::cluster::ClusterSnapshot;
use crate::json::Json;
use crate::protocol::Request;

/// The latency-tracked request kinds, in wire-name order. `metrics`,
/// `metrics_prom`, and `shutdown` are monitoring/control traffic and
/// are accounted separately (see the `monitoring` counter), so
/// self-observation never skews the service rates.
pub const KIND_NAMES: [&str; 6] = [
    "enumerate",
    "verdict",
    "witness",
    "refutation",
    "certify",
    "batch",
];

/// Label values of the delay-set robustness verdict counters, in
/// [`Telemetry::robust_verdicts`] index order.
pub const ROBUST_VERDICT_NAMES: [&str; 3] = ["robust", "cycle", "unknown"];

/// `le` bounds of the `samm_batch_size` histogram (plain values, not
/// nanoseconds): powers of two up to [`crate::protocol::MAX_BATCH`].
pub const BATCH_SIZE_LE: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// `le` bounds of the `samm_forward_hops` histogram: the `fwd` marker
/// caps forwarding at one hop, so 0/1 covers every possible value.
pub const FORWARD_HOPS_LE: [u64; 2] = [0, 1];

/// Index into [`KIND_NAMES`] for a request, or `None` for
/// monitoring/control kinds.
pub fn kind_index(request: &Request) -> Option<usize> {
    match request {
        Request::Enumerate { .. } => Some(0),
        Request::Verdict { .. } => Some(1),
        Request::Witness { .. } => Some(2),
        Request::Refutation { .. } => Some(3),
        Request::Certify { .. } => Some(4),
        Request::Batch(_) => Some(5),
        Request::Metrics | Request::MetricsCluster | Request::MetricsProm | Request::Shutdown => {
            None
        }
    }
}

/// Renders a [`HistogramSnapshot`] as its wire object —
/// `{"count":..,"sum":..,"max":..,"buckets":[..]}` — the shape
/// `metrics_cluster` ships between nodes so the aggregator can rebuild
/// and merge exact snapshots.
pub fn snapshot_to_json(snap: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::num(snap.count as f64)),
        ("sum", Json::num(snap.sum as f64)),
        ("max", Json::num(snap.max as f64)),
        (
            "buckets",
            Json::Arr(
                snap.buckets
                    .iter()
                    .map(|b| Json::num(*b as f64))
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

/// Parses the wire object written by [`snapshot_to_json`]. Returns
/// `None` for anything malformed — a peer running a different build
/// degrades to "not merged", never a crash.
pub fn snapshot_from_json(value: &Json) -> Option<HistogramSnapshot> {
    let count = value.get("count")?.as_u64()?;
    let sum = value.get("sum")?.as_u64()?;
    let max = value.get("max")?.as_u64()?;
    let buckets = value
        .get("buckets")?
        .as_arr()?
        .iter()
        .map(|b| b.as_u64())
        .collect::<Option<Vec<u64>>>()?;
    Some(HistogramSnapshot {
        count,
        sum,
        max,
        buckets,
    })
}

/// How a request was answered, for counter/histogram labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqOutcome {
    /// Answered from the enumeration cache.
    Hit,
    /// Answered by fresh work (or a kind with no cache).
    Miss,
    /// Failed with the structured `overbudget` error.
    Overbudget,
    /// Failed with any other structured error.
    Error,
}

impl ReqOutcome {
    /// The Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            ReqOutcome::Hit => "hit",
            ReqOutcome::Miss => "miss",
            ReqOutcome::Overbudget => "overbudget",
            ReqOutcome::Error => "error",
        }
    }

    /// Classifies a rendered response: structured errors by kind, then
    /// the `cache_hit` field when present.
    pub fn classify(response: &Json) -> ReqOutcome {
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            let kind = response
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str);
            return if kind == Some("overbudget") {
                ReqOutcome::Overbudget
            } else {
                ReqOutcome::Error
            };
        }
        match response.get("cache_hit").and_then(Json::as_bool) {
            Some(true) => ReqOutcome::Hit,
            _ => ReqOutcome::Miss,
        }
    }
}

/// Latency histograms and outcome counters for one request kind.
#[derive(Debug, Default)]
pub struct KindTelemetry {
    /// Latency of cache-hit answers.
    pub hit: Histogram,
    /// Latency of fresh (miss) answers.
    pub miss: Histogram,
    /// Latency of overbudget failures.
    pub overbudget: Histogram,
    /// Structured errors other than overbudget (no latency tracked —
    /// they are parse/lookup failures, not work).
    pub errors: AtomicU64,
}

impl KindTelemetry {
    /// Requests of this kind seen (all outcomes).
    pub fn total(&self) -> u64 {
        self.hit.count()
            + self.miss.count()
            + self.overbudget.count()
            + self.errors.load(Ordering::Relaxed)
    }

    /// The merged latency snapshot across hit/miss/overbudget.
    pub fn merged(&self) -> HistogramSnapshot {
        let mut snap = self.hit.snapshot();
        snap.merge(&self.miss.snapshot());
        snap.merge(&self.overbudget.snapshot());
        snap
    }
}

/// Slow-query logging configuration and state.
#[derive(Debug)]
pub struct SlowLog {
    /// Requests at or above this duration are logged.
    pub threshold: Duration,
    /// The JSONL sink (rotating file in production, memory in tests).
    pub sink: Box<dyn EventSink>,
}

/// The server's aggregate telemetry. One instance lives in
/// `ServerState` and is shared by every worker.
#[derive(Debug)]
pub struct Telemetry {
    /// Server start, for uptime and event timestamps.
    pub started: Instant,
    /// Generator for server-assigned request ids.
    pub ids: RequestIdGen,
    /// Per-kind latency histograms and counters ([`KIND_NAMES`] order).
    pub kinds: [KindTelemetry; 6],
    /// Monitoring requests (`metrics` / `metrics_prom`) — reported
    /// separately so self-observation does not skew `requests`.
    pub monitoring: AtomicU64,
    /// Completed-request rate window (non-monitoring).
    pub rate: RateCounter,
    /// Connections currently queued waiting for a worker.
    pub queue_depth: AtomicU64,
    /// Aggregated closure-rule / candidate counters folded from every
    /// fresh enumeration's [`samm_core::obs::ObsStats`].
    pub obs_agg: Obs,
    /// Behaviours explored by fresh enumerations.
    pub enum_explored: AtomicU64,
    /// Forks attempted by fresh enumerations.
    pub enum_forks: AtomicU64,
    /// Forks discarded as duplicates (dedup hits) by fresh enumerations.
    pub enum_deduped: AtomicU64,
    /// Delay-set robustness verdicts answered by `certify` requests
    /// carrying `robust:true`, in [`ROBUST_VERDICT_NAMES`] order.
    pub robust_verdicts: [AtomicU64; 3],
    /// Requests logged as slow.
    pub slow_total: AtomicU64,
    /// Request id of the most recent slow query (exposed as an info
    /// metric so dashboards can link the exposition to the JSONL log).
    pub last_slow_id: Mutex<Option<String>>,
    /// Sub-requests per `batch` envelope (plain values, not nanos).
    pub batch_sizes: Histogram,
    /// Cluster hops taken to answer an enumerate (0 = owned locally).
    pub forward_hops: Histogram,
    /// Requests forwarded to the owning peer and answered by it.
    pub forwards_ok: AtomicU64,
    /// Forwards that failed over to local execution (peer unreachable).
    pub forward_fallbacks: AtomicU64,
    /// Enumerations that waited on an identical in-flight query instead
    /// of running their own (single-flight de-duplication).
    pub singleflight_waits: AtomicU64,
    /// Forwarded-request tallies per peer node id.
    pub peer_forwards: Mutex<BTreeMap<String, u64>>,
    /// Per-event-loop gauges, registered by the event-loop core.
    pub loops: Mutex<Vec<Arc<LoopGauges>>>,
    /// Slow-query log, when configured.
    pub slow: Option<SlowLog>,
    /// Span sink for distributed tracing, when configured (`--trace-log`).
    /// `None` keeps the request path span-free unless a client sends a
    /// `trace` context (ids still propagate then, unrecorded).
    pub spans: Option<Box<dyn SpanSink>>,
    /// Fleet view cached from the most recent `metrics_cluster`
    /// fan-out, keyed by node id. Backs the `node`-labelled Prometheus
    /// families; empty (families omitted) until the first fan-out.
    pub fleet: Mutex<BTreeMap<String, FleetSample>>,
}

/// One node's contribution to the cached fleet view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSample {
    /// Whether the node answered the most recent fan-out.
    pub up: bool,
    /// Latency-tracked requests the node reported.
    pub requests: u64,
}

/// Live gauges for one event loop, updated by the loop thread and read
/// by the exposition.
#[derive(Debug, Default)]
pub struct LoopGauges {
    /// Open connections owned by this loop.
    pub connections: AtomicU64,
    /// Requests dispatched to workers and not yet answered.
    pub inflight: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(None)
    }
}

impl Telemetry {
    /// Telemetry with an optional slow-query log.
    pub fn new(slow: Option<SlowLog>) -> Self {
        Telemetry {
            started: Instant::now(),
            ids: RequestIdGen::new("r"),
            kinds: Default::default(),
            monitoring: AtomicU64::new(0),
            rate: RateCounter::new(),
            queue_depth: AtomicU64::new(0),
            obs_agg: Obs::new(),
            enum_explored: AtomicU64::new(0),
            enum_forks: AtomicU64::new(0),
            enum_deduped: AtomicU64::new(0),
            robust_verdicts: Default::default(),
            slow_total: AtomicU64::new(0),
            last_slow_id: Mutex::new(None),
            batch_sizes: Histogram::default(),
            forward_hops: Histogram::default(),
            forwards_ok: AtomicU64::new(0),
            forward_fallbacks: AtomicU64::new(0),
            singleflight_waits: AtomicU64::new(0),
            peer_forwards: Mutex::new(BTreeMap::new()),
            loops: Mutex::new(Vec::new()),
            slow,
            spans: None,
            fleet: Mutex::new(BTreeMap::new()),
        }
    }

    /// The span sink, when tracing is configured.
    pub fn span_sink(&self) -> Option<&dyn SpanSink> {
        self.spans.as_deref()
    }

    /// Replaces the cached fleet view with `samples` (one
    /// `metrics_cluster` fan-out's worth).
    pub fn update_fleet(&self, samples: impl IntoIterator<Item = (String, FleetSample)>) {
        let mut fleet = self.fleet.lock().expect("fleet poisoned");
        fleet.clear();
        fleet.extend(samples);
    }

    /// Registers one event loop's gauges; the returned handle is shared
    /// with the exposition.
    pub fn register_loop(&self) -> Arc<LoopGauges> {
        let gauges = Arc::new(LoopGauges::default());
        self.loops
            .lock()
            .expect("loop gauges poisoned")
            .push(Arc::clone(&gauges));
        gauges
    }

    /// Counts one request forwarded to (and answered by) `peer`.
    pub fn note_forward(&self, peer: &str) {
        self.forwards_ok.fetch_add(1, Ordering::Relaxed);
        *self
            .peer_forwards
            .lock()
            .expect("peer forwards poisoned")
            .entry(peer.to_owned())
            .or_insert(0) += 1;
    }

    /// Opens a rotating slow-query JSONL log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to open the file.
    pub fn with_slow_log(
        path: PathBuf,
        threshold: Duration,
        max_bytes: u64,
    ) -> std::io::Result<Telemetry> {
        let log = JsonlLog::open(path, max_bytes)?;
        Ok(Telemetry::new(Some(SlowLog {
            threshold,
            sink: Box::new(log),
        })))
    }

    /// Records one completed latency-tracked request.
    pub fn record(&self, kind: usize, outcome: ReqOutcome, elapsed: Duration) {
        let k = &self.kinds[kind];
        match outcome {
            ReqOutcome::Hit => k.hit.record_duration(elapsed),
            ReqOutcome::Miss => k.miss.record_duration(elapsed),
            ReqOutcome::Overbudget => k.overbudget.record_duration(elapsed),
            ReqOutcome::Error => {
                k.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.rate.record();
    }

    /// Logs a slow query (when configured and `elapsed` is at or over
    /// the threshold) and remembers its id. `batch_parent` is the id of
    /// the enclosing `batch` envelope for sub-requests, recorded as the
    /// `batch` field so a slow slot can be tied back to its envelope.
    pub fn note_slow(
        &self,
        id: &str,
        batch_parent: Option<&str>,
        kind: &str,
        outcome: ReqOutcome,
        elapsed: Duration,
    ) {
        let Some(slow) = &self.slow else { return };
        if elapsed < slow.threshold {
            return;
        }
        self.slow_total.fetch_add(1, Ordering::Relaxed);
        *self.last_slow_id.lock().expect("slow id poisoned") = Some(id.to_owned());
        let mut fields = vec![
            (
                "uptime_ms",
                FieldValue::U64(self.started.elapsed().as_millis() as u64),
            ),
            ("id", FieldValue::Str(id)),
            ("kind", FieldValue::Str(kind)),
            ("outcome", FieldValue::Str(outcome.label())),
            ("ns", FieldValue::U64(elapsed.as_nanos() as u64)),
            ("ms", FieldValue::F64(elapsed.as_secs_f64() * 1e3)),
        ];
        if let Some(parent) = batch_parent {
            fields.push(("batch", FieldValue::Str(parent)));
        }
        slow.sink.emit(&jsonl_event(&fields));
    }

    /// Tallies one delay-set robustness verdict (by its
    /// [`ROBUST_VERDICT_NAMES`] name) from a `certify` request.
    pub fn record_robust_verdict(&self, name: &str) {
        if let Some(i) = ROBUST_VERDICT_NAMES.iter().position(|n| *n == name) {
            self.robust_verdicts[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds a fresh enumeration's statistics into the aggregate
    /// counters (callers skip cache hits — hits did no new work).
    pub fn fold_stats(&self, stats: &EnumStats) {
        self.enum_explored
            .fetch_add(stats.explored as u64, Ordering::Relaxed);
        self.enum_forks
            .fetch_add(stats.forks as u64, Ordering::Relaxed);
        self.enum_deduped
            .fetch_add(stats.deduped as u64, Ordering::Relaxed);
        if let Some(obs) = &stats.obs {
            Obs::add(&self.obs_agg.rule_a, obs.rule_a);
            Obs::add(&self.obs_agg.rule_b, obs.rule_b);
            Obs::add(&self.obs_agg.rule_c, obs.rule_c);
            Obs::add(&self.obs_agg.closure_rounds, obs.closure_rounds);
            Obs::add(&self.obs_agg.candidate_calls, obs.candidate_calls);
            Obs::add(&self.obs_agg.candidate_stores, obs.candidate_stores);
            Obs::add(&self.obs_agg.closure_nanos, obs.closure_nanos);
            Obs::add(&self.obs_agg.settle_nanos, obs.settle_nanos);
            Obs::add(&self.obs_agg.resolve_nanos, obs.resolve_nanos);
        }
    }

    /// Latency-tracked requests completed so far (all kinds/outcomes).
    pub fn requests_total(&self) -> u64 {
        self.kinds.iter().map(KindTelemetry::total).sum()
    }

    /// The `telemetry` section of the JSON `metrics` response: uptime,
    /// rates, queue depth, per-kind quantiles, and aggregate counters —
    /// everything `samm-top` renders.
    pub fn to_json(&self) -> Json {
        let ms = 1e-6; // ns -> ms
        let kinds = KIND_NAMES
            .iter()
            .zip(&self.kinds)
            .map(|(name, k)| {
                let merged = k.merged();
                (
                    *name,
                    Json::obj([
                        ("hit", Json::num(k.hit.count() as f64)),
                        ("miss", Json::num(k.miss.count() as f64)),
                        ("overbudget", Json::num(k.overbudget.count() as f64)),
                        ("errors", Json::num(k.errors.load(Ordering::Relaxed) as f64)),
                        ("p50_ms", Json::num(merged.quantile(0.50) as f64 * ms)),
                        ("p90_ms", Json::num(merged.quantile(0.90) as f64 * ms)),
                        ("p99_ms", Json::num(merged.quantile(0.99) as f64 * ms)),
                        ("max_ms", Json::num(merged.max as f64 * ms)),
                        ("mean_ms", Json::num(merged.mean() * ms)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        let obs = self.obs_agg.snapshot();
        Json::obj([
            (
                "uptime_secs",
                Json::num(self.started.elapsed().as_secs_f64()),
            ),
            (
                "queue_depth",
                Json::num(self.queue_depth.load(Ordering::Relaxed) as f64),
            ),
            (
                "monitoring",
                Json::num(self.monitoring.load(Ordering::Relaxed) as f64),
            ),
            (
                "slow_queries",
                Json::num(self.slow_total.load(Ordering::Relaxed) as f64),
            ),
            ("rate_5s", Json::num(self.rate.rate_per_sec(5))),
            ("kinds", Json::obj(kinds)),
            (
                "rules",
                Json::obj([
                    ("rule_a", Json::num(obs.rule_a as f64)),
                    ("rule_b", Json::num(obs.rule_b as f64)),
                    ("rule_c", Json::num(obs.rule_c as f64)),
                    ("closure_rounds", Json::num(obs.closure_rounds as f64)),
                    ("candidate_calls", Json::num(obs.candidate_calls as f64)),
                    ("candidate_stores", Json::num(obs.candidate_stores as f64)),
                ]),
            ),
            (
                "robust_verdicts",
                Json::obj(
                    ROBUST_VERDICT_NAMES
                        .iter()
                        .zip(&self.robust_verdicts)
                        .map(|(name, v)| (*name, Json::num(v.load(Ordering::Relaxed) as f64)))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "enumeration",
                Json::obj([
                    (
                        "explored",
                        Json::num(self.enum_explored.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "forks",
                        Json::num(self.enum_forks.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "deduped",
                        Json::num(self.enum_deduped.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Renders the full Prometheus text exposition. `overloaded` is the
    /// acceptor's rejection counter; `cache` the enumeration cache's
    /// global stats and `shards` its per-shard breakdown; `cluster` the
    /// membership view when serving in cluster mode (cluster-labelled
    /// families are omitted otherwise, as are per-loop gauges on the
    /// threaded core and per-peer counters before the first forward).
    pub fn render_prom(
        &self,
        overloaded: u64,
        cache: &CacheStats,
        shards: &[ShardStats],
        cluster: Option<&ClusterSnapshot>,
    ) -> String {
        use samm_core::telemetry::prom::PromText;
        let mut prom = PromText::new();

        let mut request_samples: Vec<(Vec<(&str, &str)>, f64)> = Vec::new();
        for (name, k) in KIND_NAMES.iter().zip(&self.kinds) {
            for (outcome, count) in [
                ("hit", k.hit.count()),
                ("miss", k.miss.count()),
                ("overbudget", k.overbudget.count()),
                ("error", k.errors.load(Ordering::Relaxed)),
            ] {
                request_samples.push((vec![("kind", *name), ("outcome", outcome)], count as f64));
            }
        }
        let borrowed: Vec<(&[(&str, &str)], f64)> = request_samples
            .iter()
            .map(|(labels, v)| (labels.as_slice(), *v))
            .collect();
        prom.counter(
            "samm_requests_total",
            "Requests served, by kind and outcome (hit/miss/overbudget/error).",
            &borrowed,
        );
        prom.counter(
            "samm_monitoring_requests_total",
            "metrics / metrics_prom requests (excluded from samm_requests_total).",
            &[(&[], self.monitoring.load(Ordering::Relaxed) as f64)],
        );
        prom.counter(
            "samm_overloaded_total",
            "Connections rejected because the accept queue was full.",
            &[(&[], overloaded as f64)],
        );
        prom.gauge(
            "samm_queue_depth",
            "Accepted connections waiting for a worker.",
            &[(&[], self.queue_depth.load(Ordering::Relaxed) as f64)],
        );
        prom.gauge(
            "samm_uptime_seconds",
            "Seconds since the server started.",
            &[(&[], self.started.elapsed().as_secs_f64())],
        );

        // Latency histograms, one series per (kind, outcome) with work.
        let series: Vec<(Vec<(&str, &str)>, HistogramSnapshot)> = KIND_NAMES
            .iter()
            .zip(&self.kinds)
            .flat_map(|(name, k)| {
                [
                    ("hit", k.hit.snapshot()),
                    ("miss", k.miss.snapshot()),
                    ("overbudget", k.overbudget.snapshot()),
                ]
                .into_iter()
                .filter(|(_, snap)| snap.count > 0)
                .map(|(outcome, snap)| (vec![("kind", *name), ("outcome", outcome)], snap))
                .collect::<Vec<_>>()
            })
            .collect();
        let borrowed: Vec<(&[(&str, &str)], &HistogramSnapshot)> = series
            .iter()
            .map(|(labels, snap)| (labels.as_slice(), snap))
            .collect();
        prom.histogram_nanos(
            "samm_request_latency_seconds",
            "Request latency by kind and outcome.",
            &LATENCY_LE_NANOS,
            &borrowed,
        );

        prom.counter(
            "samm_cache_hits_total",
            "Enumeration-cache lookups answered from the cache.",
            &[(&[], cache.hits as f64)],
        );
        prom.counter(
            "samm_cache_misses_total",
            "Enumeration-cache lookups that ran fresh.",
            &[(&[], cache.misses as f64)],
        );
        prom.counter(
            "samm_cache_evictions_total",
            "Enumeration-cache entries evicted.",
            &[(&[], cache.evictions as f64)],
        );
        prom.counter(
            "samm_cache_insertions_total",
            "Enumeration-cache entries inserted.",
            &[(&[], cache.insertions as f64)],
        );
        prom.gauge(
            "samm_cache_entries",
            "Enumeration-cache entries resident.",
            &[(&[], cache.entries as f64)],
        );

        // Per-shard cache breakdown: hot shards show up as skew here.
        let shard_labels: Vec<String> = (0..shards.len()).map(|i| i.to_string()).collect();
        let shard_series = |pick: fn(&ShardStats) -> u64| -> Vec<(Vec<(&str, &str)>, f64)> {
            shard_labels
                .iter()
                .zip(shards)
                .map(|(label, stats)| (vec![("shard", label.as_str())], pick(stats) as f64))
                .collect()
        };
        for (name, help, series) in [
            (
                "samm_cache_shard_entries",
                "Enumeration-cache entries resident, by shard.",
                shard_series(|s| s.entries as u64),
            ),
            (
                "samm_cache_shard_hits_total",
                "Enumeration-cache hits, by shard.",
                shard_series(|s| s.hits),
            ),
            (
                "samm_cache_shard_misses_total",
                "Enumeration-cache misses, by shard.",
                shard_series(|s| s.misses),
            ),
        ] {
            let borrowed: Vec<(&[(&str, &str)], f64)> = series
                .iter()
                .map(|(labels, v)| (labels.as_slice(), *v))
                .collect();
            if name.ends_with("_total") {
                prom.counter(name, help, &borrowed);
            } else {
                prom.gauge(name, help, &borrowed);
            }
        }

        // Batch envelopes and cluster forwarding.
        let batch_snap = self.batch_sizes.snapshot();
        prom.histogram_values(
            "samm_batch_size",
            "Sub-requests per batch envelope.",
            &BATCH_SIZE_LE,
            &[(&[], &batch_snap)],
        );
        let hops_snap = self.forward_hops.snapshot();
        prom.histogram_values(
            "samm_forward_hops",
            "Cluster hops taken to answer an enumerate (0 = owned locally).",
            &FORWARD_HOPS_LE,
            &[(&[], &hops_snap)],
        );
        prom.counter(
            "samm_forwards_total",
            "Requests forwarded to the owning peer and answered by it.",
            &[(&[], self.forwards_ok.load(Ordering::Relaxed) as f64)],
        );
        prom.counter(
            "samm_forward_fallbacks_total",
            "Forwards that failed over to local execution (peer unreachable).",
            &[(&[], self.forward_fallbacks.load(Ordering::Relaxed) as f64)],
        );
        prom.counter(
            "samm_singleflight_waits_total",
            "Enumerations that waited on an identical in-flight query.",
            &[(&[], self.singleflight_waits.load(Ordering::Relaxed) as f64)],
        );
        let peer_forwards = self
            .peer_forwards
            .lock()
            .expect("peer forwards poisoned")
            .clone();
        if !peer_forwards.is_empty() {
            let series: Vec<(Vec<(&str, &str)>, f64)> = peer_forwards
                .iter()
                .map(|(peer, count)| (vec![("peer", peer.as_str())], *count as f64))
                .collect();
            let borrowed: Vec<(&[(&str, &str)], f64)> = series
                .iter()
                .map(|(labels, v)| (labels.as_slice(), *v))
                .collect();
            prom.counter(
                "samm_peer_forwards_total",
                "Requests forwarded, by destination peer.",
                &borrowed,
            );
        }

        // Per-event-loop gauges (absent on the threaded core).
        let loops = self.loops.lock().expect("loop gauges poisoned").clone();
        if !loops.is_empty() {
            let loop_labels: Vec<String> = (0..loops.len()).map(|i| i.to_string()).collect();
            for (name, help, pick) in [
                (
                    "samm_loop_connections",
                    "Open connections, by event loop.",
                    (|g: &LoopGauges| g.connections.load(Ordering::Relaxed))
                        as fn(&LoopGauges) -> u64,
                ),
                (
                    "samm_loop_inflight",
                    "Requests dispatched and not yet answered, by event loop.",
                    |g: &LoopGauges| g.inflight.load(Ordering::Relaxed),
                ),
            ] {
                let series: Vec<(Vec<(&str, &str)>, f64)> = loop_labels
                    .iter()
                    .zip(&loops)
                    .map(|(label, gauges)| (vec![("loop", label.as_str())], pick(gauges) as f64))
                    .collect();
                let borrowed: Vec<(&[(&str, &str)], f64)> = series
                    .iter()
                    .map(|(labels, v)| (labels.as_slice(), *v))
                    .collect();
                prom.gauge(name, help, &borrowed);
            }
        }

        // Fleet view (absent until the first metrics_cluster fan-out).
        let fleet = self.fleet.lock().expect("fleet poisoned").clone();
        if !fleet.is_empty() {
            let up: Vec<(Vec<(&str, &str)>, f64)> = fleet
                .iter()
                .map(|(node, s)| (vec![("node", node.as_str())], if s.up { 1.0 } else { 0.0 }))
                .collect();
            let borrowed: Vec<(&[(&str, &str)], f64)> =
                up.iter().map(|(l, v)| (l.as_slice(), *v)).collect();
            prom.gauge(
                "samm_fleet_node_up",
                "Whether the node answered the last metrics_cluster fan-out.",
                &borrowed,
            );
            let requests: Vec<(Vec<(&str, &str)>, f64)> = fleet
                .iter()
                .map(|(node, s)| (vec![("node", node.as_str())], s.requests as f64))
                .collect();
            let borrowed: Vec<(&[(&str, &str)], f64)> =
                requests.iter().map(|(l, v)| (l.as_slice(), *v)).collect();
            prom.gauge(
                "samm_fleet_node_requests",
                "Requests each node reported in the last metrics_cluster fan-out.",
                &borrowed,
            );
        }

        // Cluster membership (absent outside cluster mode).
        if let Some(snapshot) = cluster {
            prom.gauge(
                "samm_cluster_self_info",
                "This node's id (always 1; the id is the label).",
                &[(&[("node", snapshot.self_id.as_str())], 1.0)],
            );
            let series: Vec<(Vec<(&str, &str)>, f64)> = snapshot
                .nodes
                .iter()
                .map(|(id, alive)| (vec![("node", id.as_str())], if *alive { 1.0 } else { 0.0 }))
                .collect();
            let borrowed: Vec<(&[(&str, &str)], f64)> = series
                .iter()
                .map(|(labels, v)| (labels.as_slice(), *v))
                .collect();
            prom.gauge(
                "samm_cluster_node_up",
                "Cluster member liveness under this node's view (1 = alive).",
                &borrowed,
            );
        }

        let obs = self.obs_agg.snapshot();
        prom.counter(
            "samm_closure_rule_applications_total",
            "Store Atomicity closure-rule edge insertions (paper Figure 6), by rule.",
            &[
                (&[("rule", "a")], obs.rule_a as f64),
                (&[("rule", "b")], obs.rule_b as f64),
                (&[("rule", "c")], obs.rule_c as f64),
            ],
        );
        prom.counter(
            "samm_closure_rounds_total",
            "Store Atomicity fixpoint rounds across fresh enumerations.",
            &[(&[], obs.closure_rounds as f64)],
        );
        prom.counter(
            "samm_candidate_calls_total",
            "candidates(L) queries across fresh enumerations.",
            &[(&[], obs.candidate_calls as f64)],
        );
        prom.counter(
            "samm_candidate_stores_total",
            "Candidate stores returned across fresh enumerations.",
            &[(&[], obs.candidate_stores as f64)],
        );
        prom.counter(
            "samm_enum_explored_total",
            "Behaviours explored by fresh enumerations.",
            &[(&[], self.enum_explored.load(Ordering::Relaxed) as f64)],
        );
        prom.counter(
            "samm_enum_forks_total",
            "Forks attempted by fresh enumerations.",
            &[(&[], self.enum_forks.load(Ordering::Relaxed) as f64)],
        );
        prom.counter(
            "samm_enum_deduped_total",
            "Forks discarded as duplicates by fresh enumerations.",
            &[(&[], self.enum_deduped.load(Ordering::Relaxed) as f64)],
        );

        prom.counter(
            "samm_robust_verdicts_total",
            "Delay-set robustness verdicts answered by certify requests, by verdict.",
            &[
                (
                    &[("verdict", "robust")],
                    self.robust_verdicts[0].load(Ordering::Relaxed) as f64,
                ),
                (
                    &[("verdict", "cycle")],
                    self.robust_verdicts[1].load(Ordering::Relaxed) as f64,
                ),
                (
                    &[("verdict", "unknown")],
                    self.robust_verdicts[2].load(Ordering::Relaxed) as f64,
                ),
            ],
        );
        prom.counter(
            "samm_slow_queries_total",
            "Requests at or over the slow-query threshold.",
            &[(&[], self.slow_total.load(Ordering::Relaxed) as f64)],
        );
        let last = self
            .last_slow_id
            .lock()
            .expect("slow id poisoned")
            .clone()
            .unwrap_or_default();
        prom.gauge(
            "samm_slow_last_request_info",
            "Id of the most recent slow query (always 1; the id is the label).",
            &[(&[("id", last.as_str())], 1.0)],
        );
        prom.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::telemetry::{prom, MemorySink};

    #[test]
    fn classify_reads_responses() {
        let hit = Json::obj([("ok", Json::Bool(true)), ("cache_hit", Json::Bool(true))]);
        let miss = Json::obj([("ok", Json::Bool(true)), ("cache_hit", Json::Bool(false))]);
        let fresh = Json::obj([("ok", Json::Bool(true))]);
        let over = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::obj([("kind", Json::str("overbudget"))])),
        ]);
        let other = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::obj([("kind", Json::str("unknown-test"))])),
        ]);
        assert_eq!(ReqOutcome::classify(&hit), ReqOutcome::Hit);
        assert_eq!(ReqOutcome::classify(&miss), ReqOutcome::Miss);
        assert_eq!(ReqOutcome::classify(&fresh), ReqOutcome::Miss);
        assert_eq!(ReqOutcome::classify(&over), ReqOutcome::Overbudget);
        assert_eq!(ReqOutcome::classify(&other), ReqOutcome::Error);
    }

    #[test]
    fn exposition_passes_the_checker() {
        let telemetry = Telemetry::default();
        telemetry.record(0, ReqOutcome::Miss, Duration::from_millis(3));
        telemetry.record(0, ReqOutcome::Hit, Duration::from_micros(5));
        telemetry.record(1, ReqOutcome::Overbudget, Duration::from_millis(40));
        telemetry.record(2, ReqOutcome::Error, Duration::from_micros(1));
        telemetry.record_robust_verdict("robust");
        telemetry.record_robust_verdict("cycle");
        telemetry.record_robust_verdict("robust");
        telemetry.batch_sizes.record(3);
        telemetry.forward_hops.record(0);
        telemetry.forward_hops.record(1);
        telemetry.note_forward("node-b");
        telemetry.singleflight_waits.fetch_add(2, Ordering::Relaxed);
        telemetry.update_fleet([
            (
                "node-a".to_owned(),
                FleetSample {
                    up: true,
                    requests: 12,
                },
            ),
            (
                "node-b".to_owned(),
                FleetSample {
                    up: false,
                    requests: 0,
                },
            ),
        ]);
        let gauges = telemetry.register_loop();
        gauges.connections.fetch_add(4, Ordering::Relaxed);
        let shards = vec![
            ShardStats {
                entries: 2,
                hits: 5,
                misses: 1,
            },
            ShardStats {
                entries: 0,
                hits: 0,
                misses: 3,
            },
        ];
        let snapshot = ClusterSnapshot {
            self_id: "node-a".to_owned(),
            nodes: vec![("node-a".to_owned(), true), ("node-b".to_owned(), false)],
        };
        let text = telemetry.render_prom(7, &CacheStats::default(), &shards, Some(&snapshot));
        let summary = prom::check(&text).expect("valid exposition");
        for family in [
            "samm_requests_total",
            "samm_monitoring_requests_total",
            "samm_overloaded_total",
            "samm_queue_depth",
            "samm_request_latency_seconds",
            "samm_cache_hits_total",
            "samm_cache_shard_entries",
            "samm_cache_shard_hits_total",
            "samm_cache_shard_misses_total",
            "samm_batch_size",
            "samm_forward_hops",
            "samm_forwards_total",
            "samm_forward_fallbacks_total",
            "samm_singleflight_waits_total",
            "samm_peer_forwards_total",
            "samm_fleet_node_up",
            "samm_fleet_node_requests",
            "samm_loop_connections",
            "samm_loop_inflight",
            "samm_cluster_self_info",
            "samm_cluster_node_up",
            "samm_closure_rule_applications_total",
            "samm_robust_verdicts_total",
            "samm_slow_queries_total",
            "samm_slow_last_request_info",
        ] {
            assert!(summary.has_family(family), "missing {family}:\n{text}");
        }
        assert!(text.contains("samm_overloaded_total 7"));
        assert!(text.contains("samm_cache_shard_hits_total{shard=\"0\"} 5"));
        assert!(text.contains("samm_peer_forwards_total{peer=\"node-b\"} 1"));
        assert!(text.contains("samm_cluster_node_up{node=\"node-b\"} 0"));
        assert!(text.contains("samm_loop_connections{loop=\"0\"} 4"));
        assert!(text.contains("samm_batch_size_count 1"));
        assert!(text.contains("samm_robust_verdicts_total{verdict=\"robust\"} 2"));
        assert!(text.contains("samm_robust_verdicts_total{verdict=\"cycle\"} 1"));
        assert!(text.contains("samm_fleet_node_requests{node=\"node-a\"} 12"));
        assert!(text.contains("samm_fleet_node_up{node=\"node-b\"} 0"));
    }

    #[test]
    fn histogram_snapshots_round_trip_through_json() {
        let histogram = Histogram::default();
        for v in [1u64, 700, 700, 9_000, 1_000_000] {
            histogram.record(v);
        }
        let snap = histogram.snapshot();
        let rendered = snapshot_to_json(&snap).to_string();
        let parsed =
            snapshot_from_json(&crate::json::parse(&rendered).unwrap()).expect("round trip");
        assert_eq!(parsed, snap);
        // Merging two round-tripped snapshots matches merging the originals.
        let mut merged = parsed.clone();
        merged.merge(&snap);
        assert_eq!(merged.count, 2 * snap.count);
        assert_eq!(merged.sum, 2 * snap.sum);
        // Malformed shapes degrade to None.
        for bad in [
            r#"{"count":1,"sum":2}"#,
            r#"{"count":1,"sum":2,"max":3,"buckets":"x"}"#,
            r#"{"count":1,"sum":2,"max":3,"buckets":[1,"x"]}"#,
            r#"[]"#,
        ] {
            assert!(
                snapshot_from_json(&crate::json::parse(bad).unwrap()).is_none(),
                "{bad}"
            );
        }
    }

    #[test]
    fn slow_log_records_the_batch_parent() {
        let sink = std::sync::Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(Some(SlowLog {
            threshold: Duration::from_nanos(1),
            sink: Box::new(SharedSink(std::sync::Arc::clone(&sink))),
        }));
        telemetry.note_slow(
            "b1.3",
            Some("b1"),
            "enumerate",
            ReqOutcome::Miss,
            Duration::from_millis(5),
        );
        telemetry.note_slow(
            "r9",
            None,
            "verdict",
            ReqOutcome::Miss,
            Duration::from_millis(5),
        );
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":\"b1.3\""));
        assert!(lines[0].contains("\"batch\":\"b1\""));
        assert!(!lines[1].contains("\"batch\""));
    }

    /// Forwards to a shared [`MemorySink`] so the test keeps a reader.
    #[derive(Debug)]
    struct SharedSink(std::sync::Arc<MemorySink>);

    impl EventSink for SharedSink {
        fn emit(&self, line: &str) {
            self.0.emit(line);
        }
    }

    #[test]
    fn unknown_robust_verdict_names_are_ignored() {
        let telemetry = Telemetry::default();
        telemetry.record_robust_verdict("nonsense");
        assert!(telemetry
            .robust_verdicts
            .iter()
            .all(|v| v.load(Ordering::Relaxed) == 0));
    }

    #[test]
    fn fold_stats_aggregates_obs() {
        use samm_core::obs::ObsStats;
        let telemetry = Telemetry::default();
        let stats = EnumStats {
            explored: 5,
            forks: 9,
            deduped: 2,
            obs: Some(ObsStats {
                rule_a: 3,
                rule_b: 1,
                rule_c: 4,
                ..ObsStats::default()
            }),
            ..EnumStats::default()
        };
        telemetry.fold_stats(&stats);
        telemetry.fold_stats(&stats);
        let snap = telemetry.obs_agg.snapshot();
        assert_eq!(snap.rule_a, 6);
        assert_eq!(snap.rule_b, 2);
        assert_eq!(snap.rule_c, 8);
        assert_eq!(telemetry.enum_forks.load(Ordering::Relaxed), 18);
        assert_eq!(telemetry.enum_deduped.load(Ordering::Relaxed), 4);
    }
}
