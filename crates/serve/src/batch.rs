//! The `batch` request kind: many sub-requests per round trip.
//!
//! A batch amortizes framing and syscalls over up to
//! [`crate::protocol::MAX_BATCH`] litmus queries: the client sends one
//! line, the server answers one line whose `responses` array matches
//! the sub-request order. Every slot is independent — a malformed or
//! failing sub-request yields a structured error object *in its slot*
//! and its neighbours still execute.
//!
//! In cluster mode, enumerate sub-requests owned by a peer are
//! regrouped into one forwarded sub-batch per owner (the `fwd` marker
//! prevents re-forwarding) and the peer's answers are spliced back into
//! their original slots; an unreachable peer degrades that group to
//! local execution, never to an error.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use samm_core::telemetry::trace::{ActiveSpan, SpanKind};

use crate::handler::{find_entry, find_model, handle_sub, ServerState};
use crate::json::Json;
use crate::protocol::{Envelope, Request, ServiceError};

/// Executes a parsed batch. `fwd` marks a batch that already crossed
/// one cluster hop: its sub-requests are answered locally. `parent_id`
/// is the batch envelope's effective id — slots without a client id get
/// a distinct `{parent_id}.{slot}` child id — and `span` the batch's
/// server span, under which every slot opens its own child.
pub(crate) fn execute(
    state: &ServerState,
    subs: &[Result<Envelope, ServiceError>],
    fwd: bool,
    parent_id: &str,
    span: Option<&ActiveSpan>,
) -> Json {
    state.telemetry.batch_sizes.record(subs.len() as u64);
    let ctx = span.map(ActiveSpan::context);
    let mut responses: Vec<Option<Json>> = vec![None; subs.len()];

    // Distinct per-slot ids, echoed in each slot's response: the
    // client's own id wins, otherwise the slot index under the batch's
    // id. Forwarded sub-envelopes carry them so peers echo the same id.
    let slot_ids: Vec<Option<String>> = subs
        .iter()
        .enumerate()
        .map(|(index, slot)| match slot {
            Ok(env) => Some(
                env.id
                    .clone()
                    .unwrap_or_else(|| format!("{parent_id}.{index}")),
            ),
            Err(_) => None,
        })
        .collect();

    // Cluster regrouping: collect peer-owned enumerate slots per owner.
    if let Some(cluster) = state.cluster.as_ref().filter(|_| !fwd) {
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (index, slot) in subs.iter().enumerate() {
            let Ok(env) = slot else { continue };
            let Some(fp) = enumerate_fingerprint(state, &env.request) else {
                continue;
            };
            let owner = cluster.owner_of(fp);
            if cluster.node_id(owner) != cluster.self_id() && !state.cache.contains(fp) {
                groups.entry(owner).or_default().push(index);
            }
        }
        for (owner, indices) in groups {
            let mut fwd_span = span.map(|s| s.child("forward", SpanKind::Client));
            let forwarded = Envelope {
                id: None,
                request: Request::Batch(
                    indices
                        .iter()
                        .map(|&i| {
                            subs[i].clone().map(|mut env| {
                                env.id.clone_from(&slot_ids[i]);
                                env
                            })
                        })
                        .collect(),
                ),
                fwd: true,
                trace: fwd_span.as_ref().map(ActiveSpan::context),
            };
            let spliced = cluster
                .forward(owner, &forwarded)
                .and_then(|reply| splice(&indices, reply, &mut responses));
            if let Some(fs) = &mut fwd_span {
                fs.attr("peer", cluster.node_id(owner).to_owned());
                fs.attr("slots", indices.len() as u64);
                fs.attr("ok", spliced.is_some());
            }
            if let (Some(fs), Some(sink)) = (fwd_span, state.telemetry.span_sink()) {
                fs.finish(sink);
            }
            match spliced {
                Some(count) => {
                    for _ in 0..count {
                        state.telemetry.note_forward(cluster.node_id(owner));
                        state.telemetry.forward_hops.record(1);
                    }
                }
                None => {
                    // Transport failure or a malformed peer reply: the
                    // slots stay unfilled and execute locally below.
                    state
                        .telemetry
                        .forward_fallbacks
                        .fetch_add(indices.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    let mut failed = 0u64;
    let rendered: Vec<Json> = subs
        .iter()
        .zip(responses)
        .zip(&slot_ids)
        .map(|((slot, splice_result), slot_id)| {
            let response = match (slot, splice_result) {
                (_, Some(spliced)) => spliced,
                (Ok(env), None) => {
                    // Slots that already failed one forward attempt run
                    // locally (`fwd` forced) rather than re-routing.
                    let id = slot_id.as_deref().expect("ok slots have ids");
                    handle_sub(state, env, true, id, ctx, parent_id)
                }
                (Err(err), None) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    err.to_response()
                }
            };
            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                failed += 1;
            }
            response
        })
        .collect();

    Json::obj([
        ("ok", Json::Bool(true)),
        ("kind", Json::str("batch")),
        ("count", Json::num(rendered.len() as f64)),
        ("failed", Json::num(failed as f64)),
        ("responses", Json::Arr(rendered)),
    ])
}

/// The cache fingerprint of an enumerate request, when it resolves to a
/// known test/model. Unresolvable requests return `None` and execute
/// locally, where they produce their structured error.
fn enumerate_fingerprint(
    state: &ServerState,
    request: &Request,
) -> Option<samm_core::fingerprint::Fingerprint> {
    let Request::Enumerate {
        test,
        model,
        budget,
        ..
    } = request
    else {
        return None;
    };
    let entry = find_entry(test).ok()?;
    let policy = find_model(model).ok()?.policy();
    let config = state.config(*budget);
    Some(samm_core::fingerprint::query_fingerprint(
        &entry.test.program,
        &policy,
        &config,
    ))
}

/// Splices a peer's batch reply back into the origin slots. Returns the
/// number of slots filled, or `None` when the reply does not line up
/// (the caller then falls back to local execution for the whole group).
fn splice(indices: &[usize], reply: Json, responses: &mut [Option<Json>]) -> Option<usize> {
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    let peer_responses = reply.get("responses").and_then(Json::as_arr)?;
    if peer_responses.len() != indices.len() {
        return None;
    }
    for (&index, peer_response) in indices.iter().zip(peer_responses) {
        let mut response = peer_response.clone();
        if let Json::Obj(map) = &mut response {
            map.insert("forwarded".to_owned(), Json::Bool(true));
        }
        responses[index] = Some(response);
    }
    Some(indices.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use samm_core::cache::EnumCache;

    fn state() -> ServerState {
        ServerState::new(EnumCache::new(64), None)
    }

    fn batch_line(subs: &[&str]) -> String {
        format!(r#"{{"kind":"batch","requests":[{}]}}"#, subs.join(","))
    }

    #[test]
    fn responses_preserve_slot_order_and_ids() {
        let state = state();
        let line = batch_line(&[
            r#"{"kind":"enumerate","test":"SB","model":"TSO","id":"s0"}"#,
            r#"{"kind":"metrics","id":"s1"}"#,
            r#"{"kind":"enumerate","test":"SB","model":"SC","id":"s2"}"#,
        ]);
        let request = parse_request(&line).unwrap();
        let response = crate::handler::handle(&state, &request);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(response.get("failed").and_then(Json::as_u64), Some(0));
        let responses = response.get("responses").and_then(Json::as_arr).unwrap();
        for (slot, id) in responses.iter().zip(["s0", "s1", "s2"]) {
            assert_eq!(slot.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(slot.get("id").and_then(Json::as_str), Some(id));
        }
        // SB under TSO has 3 outcomes, under SC 2 fewer interleavings
        // are visible at slot granularity: just check the kinds.
        assert_eq!(
            responses[0].get("kind").and_then(Json::as_str),
            Some("enumerate")
        );
        assert_eq!(
            responses[1].get("kind").and_then(Json::as_str),
            Some("metrics")
        );
    }

    #[test]
    fn slots_without_ids_get_distinct_child_ids() {
        let state = state();
        let line = batch_line(&[
            r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#,
            r#"{"kind":"metrics","id":"mine"}"#,
            r#"{"kind":"enumerate","test":"SB","model":"SC"}"#,
        ]);
        let request = parse_request(&line).unwrap();
        let response = crate::handler::handle(&state, &request);
        let parent = response
            .get("id")
            .and_then(Json::as_str)
            .expect("batch id")
            .to_owned();
        let responses = response.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(
            responses[0].get("id").and_then(Json::as_str),
            Some(format!("{parent}.0").as_str())
        );
        // Client-supplied ids always win over derived ones.
        assert_eq!(responses[1].get("id").and_then(Json::as_str), Some("mine"));
        assert_eq!(
            responses[2].get("id").and_then(Json::as_str),
            Some(format!("{parent}.2").as_str())
        );
    }

    #[test]
    fn malformed_slots_fail_alone() {
        let state = state();
        let line = batch_line(&[
            r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#,
            r#"{"kind":"enumerate","test":"SB"}"#,
            r#"{"kind":"shutdown"}"#,
            r#"{"kind":"enumerate","test":"no-such-test","model":"TSO"}"#,
        ]);
        let request = parse_request(&line).unwrap();
        let response = crate::handler::handle(&state, &request);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("failed").and_then(Json::as_u64), Some(3));
        let responses = response.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
        for (slot, kind) in [(1, "malformed"), (2, "malformed"), (3, "unknown-test")] {
            assert_eq!(responses[slot].get("ok"), Some(&Json::Bool(false)));
            assert_eq!(
                responses[slot]
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some(kind),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_singles_cache_effects() {
        let batched = state();
        let singles = state();
        let subs = [
            r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#,
            r#"{"kind":"enumerate","test":"SB","model":"SC"}"#,
            r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#,
        ];
        let batch_request = parse_request(&batch_line(&subs)).unwrap();
        let response = crate::handler::handle(&batched, &batch_request);
        let batch_responses: Vec<Json> = response
            .get("responses")
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();

        let single_responses: Vec<Json> = subs
            .iter()
            .map(|line| crate::handler::handle(&singles, &parse_request(line).unwrap()))
            .collect();

        for (b, s) in batch_responses.iter().zip(&single_responses) {
            for field in ["kind", "test", "model", "cache_hit", "outcome_count"] {
                assert_eq!(b.get(field), s.get(field), "field {field}");
            }
            assert_eq!(b.get("outcomes"), s.get("outcomes"));
        }
        // Same fingerprints → same cache population either way.
        assert_eq!(batched.cache.len(), singles.cache.len());
        assert_eq!(batched.cache.stats().hits, singles.cache.stats().hits);
        assert_eq!(batched.cache.stats().misses, singles.cache.stats().misses);
        // The batch line counts once; its subs do not inflate requests.
        assert_eq!(batched.counters.requests.load(Ordering::Relaxed), 1);
        assert_eq!(singles.counters.requests.load(Ordering::Relaxed), 3);
        // Sub-kind latency telemetry still flows per sub-request.
        assert_eq!(batched.telemetry.kinds[0].total(), 3);
        assert_eq!(batched.telemetry.kinds[5].total(), 1);
        assert_eq!(batched.telemetry.batch_sizes.count(), 1);
    }
}
