//! # samm-serve — concurrent litmus-query service
//!
//! A TCP service over the enumeration framework: clients send
//! newline-delimited JSON requests (`enumerate`, `batch`, `verdict`,
//! `witness`, `refutation`, `certify`, `metrics`, `shutdown`) and every
//! enumeration-backed answer flows through the content-addressed
//! [`samm_core::cache::EnumCache`], so a query repeated by any client —
//! or replayed under the other engine — costs a hash lookup.
//!
//! The implementation is std-only (no async runtime, no serde): a
//! hand-rolled JSON codec ([`json`]), a typed wire protocol
//! ([`protocol`]), a request executor ([`handler`]), and a blocking
//! [`client`]. Two I/O cores host the executor: the readiness-driven
//! [`event_loop`] (epoll on Linux, portable `poll` fallback — see
//! [`sys`]) with request pipelining and the syscall-amortizing
//! [`batch`] envelope, and the legacy bounded-queue thread-per-
//! connection [`server`]. Both drain gracefully. [`ring`] and
//! [`cluster`] scale the event core out: consistent-hash routing of
//! [`samm_core::fingerprint`] keys across a static member list, peer
//! forwarding on miss with single-flight de-duplication, and live
//! dead-peer failover, turning the node-local caches into one
//! distributed cache. `docs/SERVICE.md` documents the wire format and
//! `docs/CLUSTER.md` the operator runbook; the `samm-serve` binary
//! hosts the server and `samm-load` (in `samm-bench`) replays the
//! catalog against one or many nodes.
//!
//! ## Example: in-process round trip
//!
//! ```
//! use std::time::Duration;
//! use samm_serve::{client::Client, json::Json, server};
//!
//! let handle = server::start(server::ServerConfig {
//!     workers: 2,
//!     ..server::ServerConfig::default()
//! }).unwrap();
//! let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
//! let reply = client
//!     .request_raw(r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#)
//!     .unwrap();
//! assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
// Denied rather than forbidden: the readiness poller ([`sys`]) opts in
// for its two syscall surfaces (epoll/poll); everything else stays safe.
#![deny(unsafe_code)]

pub mod batch;
pub mod client;
pub mod cluster;
#[cfg(unix)]
pub mod event_loop;
pub mod handler;
pub mod json;
pub mod protocol;
pub mod ring;
pub mod server;
#[cfg(unix)]
#[allow(unsafe_code)]
pub mod sys;
pub mod telemetry;

pub use client::{Client, ClientError};
pub use cluster::{Cluster, ClusterConfig};
#[cfg(unix)]
pub use event_loop::{EventConfig, EventHandle};
pub use handler::ServerState;
pub use json::Json;
pub use protocol::{
    parse_envelope, parse_request, render_envelope, render_request, EngineSel, Envelope, ErrorKind,
    Request, ServiceError, MAX_BATCH,
};
pub use ring::HashRing;
pub use server::{start, ServerConfig, ServerHandle};
pub use telemetry::{ReqOutcome, Telemetry};
