//! # samm-serve — concurrent litmus-query service
//!
//! A multithreaded TCP service over the enumeration framework: clients
//! send newline-delimited JSON requests (`enumerate`, `verdict`,
//! `witness`, `refutation`, `certify`, `metrics`, `shutdown`) and every
//! enumeration-backed answer flows through the content-addressed
//! [`samm_core::cache::EnumCache`], so a query repeated by any client —
//! or replayed under the other engine — costs a hash lookup.
//!
//! The implementation is std-only (no async runtime, no serde): a
//! hand-rolled JSON codec ([`json`]), a typed wire protocol
//! ([`protocol`]), a request executor ([`handler`]), a bounded-queue
//! threaded server with graceful drain ([`server`]), and a blocking
//! [`client`]. `docs/SERVICE.md` documents the wire format; the
//! `samm-serve` binary hosts the server and `samm-load` (in
//! `samm-bench`) replays the catalog against it.
//!
//! ## Example: in-process round trip
//!
//! ```
//! use std::time::Duration;
//! use samm_serve::{client::Client, json::Json, server};
//!
//! let handle = server::start(server::ServerConfig {
//!     workers: 2,
//!     ..server::ServerConfig::default()
//! }).unwrap();
//! let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
//! let reply = client
//!     .request_raw(r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#)
//!     .unwrap();
//! assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod handler;
pub mod json;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use client::{Client, ClientError};
pub use handler::ServerState;
pub use json::Json;
pub use protocol::{
    parse_envelope, parse_request, EngineSel, Envelope, ErrorKind, Request, ServiceError,
};
pub use server::{start, ServerConfig, ServerHandle};
pub use telemetry::{ReqOutcome, Telemetry};
