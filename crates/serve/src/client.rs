//! A minimal blocking client for the service: one TCP connection,
//! newline-delimited JSON request/response pairs.
//!
//! Used by the `samm-load` load generator and the integration tests;
//! external clients can speak the protocol with nothing more than
//! `nc`/`telnet` (see `docs/SERVICE.md`).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Json};

/// A connected client.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A client-side failure: transport, framing, or JSON decoding.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server closed the connection (e.g. after an `overloaded`
    /// rejection, once its error line was consumed).
    Closed,
    /// The response line was not valid JSON.
    BadResponse(json::ParseError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Closed => f.write_str("server closed the connection"),
            ClientError::BadResponse(e) => write!(f, "unparseable response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects with a timeout, applying the same bound to reads and
    /// writes.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        // One-line request/response framing stalls badly under Nagle +
        // delayed ACK (~40 ms per round trip); disable batching.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Transport failures, closed connections, and unparseable
    /// responses. A structured `{"ok":false,...}` response is NOT an
    /// error at this layer — inspect the returned object.
    pub fn request_raw(&mut self, line: &str) -> Result<Json, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends one raw request line without waiting for the response —
    /// the pipelining building block. Pair with
    /// [`Client::read_response`]; the server may answer pipelined
    /// requests out of order, so match responses by their echoed `id`.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_raw(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends a [`Json`] request object.
    ///
    /// # Errors
    ///
    /// As for [`Client::request_raw`].
    pub fn request(&mut self, request: &Json) -> Result<Json, ClientError> {
        self.request_raw(&request.to_string())
    }

    /// As [`Client::request_raw`], returning the raw response line
    /// unparsed. The hot path for load generation, where the caller
    /// scans a few fields instead of building the full value tree.
    ///
    /// # Errors
    ///
    /// Transport failures and closed connections.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response_line()
    }

    /// Reads one response line without sending anything — used to
    /// consume unsolicited server lines such as the `overloaded`
    /// rejection a full server writes before closing the connection.
    ///
    /// # Errors
    ///
    /// As for [`Client::request_raw`].
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        let line = self.read_response_line()?;
        json::parse(&line).map_err(ClientError::BadResponse)
    }

    /// Reads one raw response line (trailing newline stripped) without
    /// parsing it.
    ///
    /// # Errors
    ///
    /// Transport failures and closed connections.
    pub fn read_response_line(&mut self) -> Result<String, ClientError> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        response.truncate(response.trim_end().len());
        Ok(response)
    }
}
