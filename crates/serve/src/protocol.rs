//! Wire protocol of the litmus-query service.
//!
//! The transport is newline-delimited JSON over TCP: each request is one
//! JSON object on one line, and each response is one JSON object on one
//! line. `docs/SERVICE.md` documents the schemas; this module holds the
//! typed [`Request`] parsed from a line and the [`ServiceError`] shape
//! every failure is reported in.

use std::fmt;

use samm_core::telemetry::trace::TraceContext;

use crate::json::{self, Json};

/// How a request asks the enumeration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineSel {
    /// The serial depth-first engine (`samm_core::enumerate`).
    #[default]
    Serial,
    /// The work-stealing pool (`samm_core::parallel`).
    Parallel,
    /// The prune-before-expand engine (`samm_core::pruned`).
    Pruned,
}

impl EngineSel {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            EngineSel::Serial => "serial",
            EngineSel::Parallel => "parallel",
            EngineSel::Pruned => "pruned",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enumerate one catalog test under one model; answered from the
    /// content-addressed cache when possible.
    Enumerate {
        /// Catalog test name (case-insensitive).
        test: String,
        /// Model name (case-insensitive), e.g. `TSO`.
        model: String,
        /// Per-request fork budget override.
        budget: Option<u64>,
        /// Engine selection.
        engine: EngineSel,
    },
    /// Run the conformance harness on one catalog entry: every verdict
    /// row under every model the entry mentions.
    Verdict {
        /// Catalog test name.
        test: String,
        /// Per-request fork budget override.
        budget: Option<u64>,
        /// Engine selection.
        engine: EngineSel,
    },
    /// Find a replayable witness for one condition of a catalog test.
    Witness {
        /// Catalog test name.
        test: String,
        /// Model name.
        model: String,
        /// Index into the test's conditions (default 0).
        condition: usize,
        /// Per-request fork budget override.
        budget: Option<u64>,
    },
    /// Prove one condition unobservable (or produce its witness).
    Refutation {
        /// Catalog test name.
        test: String,
        /// Model name.
        model: String,
        /// Index into the test's conditions (default 0).
        condition: usize,
        /// Per-request fork budget override.
        budget: Option<u64>,
    },
    /// Run the static DRF/total-order certifier on a test/model pair,
    /// optionally followed by the delay-set robustness analysis.
    Certify {
        /// Catalog test name.
        test: String,
        /// Model name.
        model: String,
        /// Also run the delay-set robustness analysis and report its
        /// verdict (`robust`/`cycle`/`unknown`) in the response.
        robust: bool,
    },
    /// Execute up to [`MAX_BATCH`] sub-requests in one round trip,
    /// answering with a `responses` array in sub-request order. Each
    /// slot is parsed independently: a malformed sub-request becomes a
    /// structured error *in its slot* without failing its neighbours.
    /// Nested `batch` and `shutdown` sub-requests are rejected per-slot.
    Batch(Vec<Result<Envelope, ServiceError>>),
    /// Report server counters and cache statistics.
    Metrics,
    /// Report the fleet view: this node's per-kind latency histogram
    /// snapshots plus — unless the request arrived with `fwd` set —
    /// the same snapshots fanned out from every ring peer, merged into
    /// one `fleet` section (histogram merge is exact and commutative,
    /// so the fleet histogram equals the sum of per-node snapshots).
    MetricsCluster,
    /// Report the Prometheus text-format exposition (as the `text`
    /// field of the response). The same payload is served over plain
    /// HTTP when the server was started with `--prom-addr`.
    MetricsProm,
    /// Ask the server to stop accepting connections, drain in-flight
    /// work, and exit.
    Shutdown,
}

/// A request line as parsed off the wire: the typed [`Request`] plus
/// the optional client-chosen `id` echoed back in the response (and
/// recorded in the slow-query log). Requests without an `id` get a
/// server-assigned one.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen request id, if the line carried one.
    pub id: Option<String>,
    /// The request itself.
    pub request: Request,
    /// Set on requests a cluster peer forwarded here: the receiving
    /// node answers locally and never forwards again, so routing
    /// disagreements (e.g. mid-drain ring views) cannot loop.
    pub fwd: bool,
    /// Propagated trace context from the wire `trace` field. Parsing
    /// is lenient: a missing, non-string, or malformed value is `None`
    /// (the server starts a fresh root span) — tracing never turns a
    /// valid request into an error.
    pub trace: Option<TraceContext>,
}

/// Ceiling on sub-requests per `batch` envelope; larger batches are
/// rejected whole with a `malformed` error naming the limit.
pub const MAX_BATCH: usize = 256;

/// Machine-readable failure classes; the wire `error.kind` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON, or lacked required fields.
    Malformed,
    /// The `test` names no catalog entry.
    UnknownTest,
    /// The `model` names no policy.
    UnknownModel,
    /// The `kind` names no request type.
    UnknownKind,
    /// Enumeration exceeded the effective fork budget.
    Overbudget,
    /// The connection queue was full; retry after the hinted delay.
    Overloaded,
    /// Enumeration failed for a reason other than budget exhaustion.
    EnumFailed,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::UnknownTest => "unknown-test",
            ErrorKind::UnknownModel => "unknown-model",
            ErrorKind::UnknownKind => "unknown-kind",
            ErrorKind::Overbudget => "overbudget",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::EnumFailed => "enum-error",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A structured service failure, rendered as
/// `{"ok":false,"error":{"kind":...,"message":...}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// Backpressure hint: how long the client should wait before
    /// retrying. Only set with [`ErrorKind::Overloaded`].
    pub retry_after_ms: Option<u64>,
}

impl ServiceError {
    /// Builds an error with no retry hint.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ServiceError {
            kind,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Renders the full error response object.
    pub fn to_response(&self) -> Json {
        let mut error = vec![
            ("kind", Json::str(self.kind.as_str())),
            ("message", Json::str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            error.push(("retry_after_ms", Json::num(ms as f64)));
        }
        Json::obj([("ok", Json::Bool(false)), ("error", Json::obj(error))])
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ServiceError {}

fn required_str(obj: &Json, key: &str) -> Result<String, ServiceError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| {
            ServiceError::new(
                ErrorKind::Malformed,
                format!("missing or non-string field '{key}'"),
            )
        })
}

fn optional_u64(obj: &Json, key: &str) -> Result<Option<u64>, ServiceError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServiceError::new(
                ErrorKind::Malformed,
                format!("field '{key}' must be a non-negative integer"),
            )
        }),
    }
}

fn optional_bool(obj: &Json, key: &str) -> Result<bool, ServiceError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(ServiceError::new(
            ErrorKind::Malformed,
            format!("field '{key}' must be a boolean"),
        )),
    }
}

fn optional_engine(obj: &Json) -> Result<EngineSel, ServiceError> {
    match obj.get("engine") {
        None | Some(Json::Null) => Ok(EngineSel::Serial),
        Some(v) => match v.as_str() {
            Some("serial") => Ok(EngineSel::Serial),
            Some("parallel") => Ok(EngineSel::Parallel),
            Some("pruned") => Ok(EngineSel::Pruned),
            _ => Err(ServiceError::new(
                ErrorKind::Malformed,
                "field 'engine' must be \"serial\", \"parallel\" or \"pruned\"",
            )),
        },
    }
}

/// Parses one request line, discarding any `id` field — see
/// [`parse_envelope`] for the id-aware entry point the server uses.
///
/// # Errors
///
/// [`ErrorKind::Malformed`] for syntax or schema problems,
/// [`ErrorKind::UnknownKind`] for an unrecognised `kind`.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    parse_envelope(line).map(|e| e.request)
}

/// Parses one request line into an [`Envelope`]: the typed request plus
/// the optional `id` field (any kind may carry one).
///
/// # Errors
///
/// As for [`parse_request`]; a non-string `id` is
/// [`ErrorKind::Malformed`].
pub fn parse_envelope(line: &str) -> Result<Envelope, ServiceError> {
    let value = json::parse(line)
        .map_err(|e| ServiceError::new(ErrorKind::Malformed, format!("invalid JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(ServiceError::new(
            ErrorKind::Malformed,
            "request must be a JSON object",
        ));
    }
    let id = match value.get("id") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_str().map(str::to_owned).ok_or_else(|| {
            ServiceError::new(ErrorKind::Malformed, "field 'id' must be a string")
        })?),
    };
    let fwd = optional_bool(&value, "fwd")?;
    let trace = lenient_trace(&value);
    let request = parse_request_obj(&value)?;
    Ok(Envelope {
        id,
        request,
        fwd,
        trace,
    })
}

/// Decodes the optional `trace` field. Deliberately infallible: any
/// malformation (wrong type, bad hex, wrong shape) degrades to `None`
/// so the request proceeds under a fresh root span.
fn lenient_trace(value: &Json) -> Option<TraceContext> {
    value
        .get("trace")
        .and_then(Json::as_str)
        .and_then(TraceContext::parse)
}

fn parse_sub_envelope(value: &Json) -> Result<Envelope, ServiceError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(ServiceError::new(
            ErrorKind::Malformed,
            "batch sub-request must be a JSON object",
        ));
    }
    let id = match value.get("id") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_str().map(str::to_owned).ok_or_else(|| {
            ServiceError::new(ErrorKind::Malformed, "field 'id' must be a string")
        })?),
    };
    let request = parse_request_obj(value)?;
    match request {
        Request::Batch(_) => Err(ServiceError::new(
            ErrorKind::Malformed,
            "batches do not nest",
        )),
        Request::Shutdown => Err(ServiceError::new(
            ErrorKind::Malformed,
            "'shutdown' is not allowed inside a batch",
        )),
        request => Ok(Envelope {
            id,
            request,
            fwd: false,
            trace: lenient_trace(value),
        }),
    }
}

fn parse_request_obj(value: &Json) -> Result<Request, ServiceError> {
    let kind = required_str(value, "kind")?;
    match kind.as_str() {
        "batch" => {
            let subs = value
                .get("requests")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    ServiceError::new(ErrorKind::Malformed, "batch requires a 'requests' array")
                })?;
            if subs.is_empty() {
                return Err(ServiceError::new(
                    ErrorKind::Malformed,
                    "batch 'requests' must not be empty",
                ));
            }
            if subs.len() > MAX_BATCH {
                return Err(ServiceError::new(
                    ErrorKind::Malformed,
                    format!(
                        "batch carries {} sub-requests; the limit is {MAX_BATCH}",
                        subs.len()
                    ),
                ));
            }
            Ok(Request::Batch(
                subs.iter().map(parse_sub_envelope).collect(),
            ))
        }
        "enumerate" => Ok(Request::Enumerate {
            test: required_str(value, "test")?,
            model: required_str(value, "model")?,
            budget: optional_u64(value, "budget")?,
            engine: optional_engine(value)?,
        }),
        "verdict" => Ok(Request::Verdict {
            test: required_str(value, "test")?,
            budget: optional_u64(value, "budget")?,
            engine: optional_engine(value)?,
        }),
        "witness" | "refutation" => {
            let test = required_str(value, "test")?;
            let model = required_str(value, "model")?;
            let condition = optional_u64(value, "condition")?.unwrap_or(0) as usize;
            let budget = optional_u64(value, "budget")?;
            Ok(if kind == "witness" {
                Request::Witness {
                    test,
                    model,
                    condition,
                    budget,
                }
            } else {
                Request::Refutation {
                    test,
                    model,
                    condition,
                    budget,
                }
            })
        }
        "certify" => Ok(Request::Certify {
            test: required_str(value, "test")?,
            model: required_str(value, "model")?,
            robust: optional_bool(value, "robust")?,
        }),
        "metrics" => Ok(Request::Metrics),
        "metrics_cluster" => Ok(Request::MetricsCluster),
        "metrics_prom" => Ok(Request::MetricsProm),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServiceError::new(
            ErrorKind::UnknownKind,
            format!("unknown request kind '{other}'"),
        )),
    }
}

/// Renders a request back to its wire object — the inverse of the
/// parser, used by the cluster layer to forward envelopes to the
/// owning peer. Malformed batch slots (which are never forwarded)
/// render as an object the receiving parser rejects per-slot, keeping
/// slot counts aligned.
pub fn render_request(request: &Request) -> Json {
    let mut fields: Vec<(&'static str, Json)> = Vec::new();
    match request {
        Request::Enumerate {
            test,
            model,
            budget,
            engine,
        } => {
            fields.push(("kind", Json::str("enumerate")));
            fields.push(("test", Json::str(test.clone())));
            fields.push(("model", Json::str(model.clone())));
            if let Some(b) = budget {
                fields.push(("budget", Json::num(*b as f64)));
            }
            fields.push(("engine", Json::str(engine.name())));
        }
        Request::Verdict {
            test,
            budget,
            engine,
        } => {
            fields.push(("kind", Json::str("verdict")));
            fields.push(("test", Json::str(test.clone())));
            if let Some(b) = budget {
                fields.push(("budget", Json::num(*b as f64)));
            }
            fields.push(("engine", Json::str(engine.name())));
        }
        Request::Witness {
            test,
            model,
            condition,
            budget,
        }
        | Request::Refutation {
            test,
            model,
            condition,
            budget,
        } => {
            let kind = if matches!(request, Request::Witness { .. }) {
                "witness"
            } else {
                "refutation"
            };
            fields.push(("kind", Json::str(kind)));
            fields.push(("test", Json::str(test.clone())));
            fields.push(("model", Json::str(model.clone())));
            fields.push(("condition", Json::num(*condition as f64)));
            if let Some(b) = budget {
                fields.push(("budget", Json::num(*b as f64)));
            }
        }
        Request::Certify {
            test,
            model,
            robust,
        } => {
            fields.push(("kind", Json::str("certify")));
            fields.push(("test", Json::str(test.clone())));
            fields.push(("model", Json::str(model.clone())));
            if *robust {
                fields.push(("robust", Json::Bool(true)));
            }
        }
        Request::Batch(subs) => {
            fields.push(("kind", Json::str("batch")));
            let rendered = subs
                .iter()
                .map(|slot| match slot {
                    Ok(env) => render_envelope(env),
                    Err(_) => Json::obj([("kind", Json::str("_invalid"))]),
                })
                .collect();
            fields.push(("requests", Json::Arr(rendered)));
        }
        Request::Metrics => fields.push(("kind", Json::str("metrics"))),
        Request::MetricsCluster => fields.push(("kind", Json::str("metrics_cluster"))),
        Request::MetricsProm => fields.push(("kind", Json::str("metrics_prom"))),
        Request::Shutdown => fields.push(("kind", Json::str("shutdown"))),
    }
    Json::obj(fields)
}

/// Renders a full envelope (request plus `id` and `fwd` marker) as one
/// wire object.
pub fn render_envelope(env: &Envelope) -> Json {
    let mut rendered = render_request(&env.request);
    if let Json::Obj(map) = &mut rendered {
        if let Some(id) = &env.id {
            map.insert("id".to_owned(), Json::str(id.clone()));
        }
        if env.fwd {
            map.insert("fwd".to_owned(), Json::Bool(true));
        }
        if let Some(ctx) = &env.trace {
            map.insert("trace".to_owned(), Json::str(ctx.encode()));
        }
    }
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        assert_eq!(
            parse_request(r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#).unwrap(),
            Request::Enumerate {
                test: "SB".into(),
                model: "TSO".into(),
                budget: None,
                engine: EngineSel::Serial,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"verdict","test":"IRIW","budget":5000,"engine":"parallel"}"#)
                .unwrap(),
            Request::Verdict {
                test: "IRIW".into(),
                budget: Some(5000),
                engine: EngineSel::Parallel,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"witness","test":"SB","model":"TSO","condition":1}"#).unwrap(),
            Request::Witness {
                test: "SB".into(),
                model: "TSO".into(),
                condition: 1,
                budget: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"refutation","test":"SB","model":"SC"}"#).unwrap(),
            Request::Refutation {
                test: "SB".into(),
                model: "SC".into(),
                condition: 0,
                budget: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"certify","test":"MP+fences","model":"Weak"}"#).unwrap(),
            Request::Certify {
                test: "MP+fences".into(),
                model: "Weak".into(),
                robust: false,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"certify","test":"SB","model":"TSO","robust":true}"#).unwrap(),
            Request::Certify {
                test: "SB".into(),
                model: "TSO".into(),
                robust: true,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"kind":"metrics_cluster"}"#).unwrap(),
            Request::MetricsCluster
        );
        assert_eq!(
            parse_request(r#"{"kind":"metrics_prom"}"#).unwrap(),
            Request::MetricsProm
        );
        assert_eq!(
            parse_request(r#"{"kind":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn envelope_carries_the_request_id() {
        let env = parse_envelope(r#"{"kind":"metrics","id":"trace-7"}"#).unwrap();
        assert_eq!(env.id.as_deref(), Some("trace-7"));
        assert_eq!(env.request, Request::Metrics);
        let env = parse_envelope(r#"{"kind":"metrics"}"#).unwrap();
        assert_eq!(env.id, None);
        let err = parse_envelope(r#"{"kind":"metrics","id":7}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Malformed);
    }

    #[test]
    fn malformed_requests_are_classified() {
        for (line, kind) in [
            ("not json", ErrorKind::Malformed),
            ("[1,2]", ErrorKind::Malformed),
            ("{}", ErrorKind::Malformed),
            (r#"{"kind":"enumerate"}"#, ErrorKind::Malformed),
            (
                r#"{"kind":"enumerate","test":"SB","model":"TSO","budget":-1}"#,
                ErrorKind::Malformed,
            ),
            (
                r#"{"kind":"enumerate","test":"SB","model":"TSO","engine":"gpu"}"#,
                ErrorKind::Malformed,
            ),
            (
                r#"{"kind":"certify","test":"SB","model":"TSO","robust":"yes"}"#,
                ErrorKind::Malformed,
            ),
            (r#"{"kind":"frobnicate"}"#, ErrorKind::UnknownKind),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, kind, "{line}");
        }
    }

    #[test]
    fn batch_parses_with_per_slot_isolation() {
        let line = r#"{"kind":"batch","requests":[
            {"kind":"enumerate","test":"SB","model":"TSO","id":"a"},
            {"kind":"enumerate"},
            {"kind":"shutdown"},
            {"kind":"batch","requests":[{"kind":"metrics"}]},
            {"kind":"metrics"}]}"#
            .replace('\n', "");
        let Request::Batch(subs) = parse_request(&line).unwrap() else {
            panic!("expected a batch");
        };
        assert_eq!(subs.len(), 5);
        assert_eq!(subs[0].as_ref().unwrap().id.as_deref(), Some("a"));
        assert!(matches!(
            subs[0].as_ref().unwrap().request,
            Request::Enumerate { .. }
        ));
        assert_eq!(subs[1].as_ref().unwrap_err().kind, ErrorKind::Malformed);
        assert_eq!(subs[2].as_ref().unwrap_err().kind, ErrorKind::Malformed);
        assert_eq!(subs[3].as_ref().unwrap_err().kind, ErrorKind::Malformed);
        assert_eq!(subs[4].as_ref().unwrap().request, Request::Metrics);
    }

    #[test]
    fn batch_envelope_level_failures() {
        for line in [
            r#"{"kind":"batch"}"#,
            r#"{"kind":"batch","requests":[]}"#,
            r#"{"kind":"batch","requests":7}"#,
        ] {
            assert_eq!(
                parse_request(line).unwrap_err().kind,
                ErrorKind::Malformed,
                "{line}"
            );
        }
        let too_many: Vec<String> = (0..=MAX_BATCH)
            .map(|_| r#"{"kind":"metrics"}"#.to_owned())
            .collect();
        let line = format!(r#"{{"kind":"batch","requests":[{}]}}"#, too_many.join(","));
        assert_eq!(parse_request(&line).unwrap_err().kind, ErrorKind::Malformed);
    }

    #[test]
    fn rendered_requests_reparse_identically() {
        for line in [
            r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#,
            r#"{"kind":"enumerate","test":"SB","model":"TSO","budget":100,"engine":"pruned"}"#,
            r#"{"kind":"verdict","test":"IRIW","engine":"parallel"}"#,
            r#"{"kind":"witness","test":"SB","model":"TSO","condition":1}"#,
            r#"{"kind":"refutation","test":"SB","model":"SC","budget":9}"#,
            r#"{"kind":"certify","test":"SB","model":"TSO","robust":true}"#,
            r#"{"kind":"metrics"}"#,
            r#"{"kind":"metrics_cluster"}"#,
            r#"{"kind":"batch","requests":[{"kind":"metrics","id":"x"}]}"#,
        ] {
            let env = parse_envelope(line).unwrap();
            let rendered = render_envelope(&env).to_string();
            assert_eq!(parse_envelope(&rendered).unwrap(), env, "{line}");
        }
    }

    #[test]
    fn forwarded_envelopes_round_trip_the_fwd_marker() {
        let env = parse_envelope(r#"{"kind":"metrics","fwd":true,"id":"f1"}"#).unwrap();
        assert!(env.fwd);
        let rendered = render_envelope(&env).to_string();
        assert!(rendered.contains("\"fwd\":true"));
        assert_eq!(parse_envelope(&rendered).unwrap(), env);
        // Absent or false markers stay off the wire.
        let plain = parse_envelope(r#"{"kind":"metrics"}"#).unwrap();
        assert!(!plain.fwd);
        assert!(!render_envelope(&plain).to_string().contains("fwd"));
    }

    #[test]
    fn trace_context_round_trips_on_envelopes_and_subs() {
        let ctx = TraceContext {
            trace: 0xabcd_ef01_2345_6789,
            span: 0x1111_2222_3333_4444,
        };
        let line = format!(r#"{{"kind":"metrics","trace":"{}"}}"#, ctx.encode());
        let env = parse_envelope(&line).unwrap();
        assert_eq!(env.trace, Some(ctx));
        let rendered = render_envelope(&env).to_string();
        assert_eq!(parse_envelope(&rendered).unwrap(), env);

        // Sub-envelopes carry their own trace field too.
        let line = format!(
            r#"{{"kind":"batch","requests":[{{"kind":"metrics","trace":"{}"}}]}}"#,
            ctx.encode()
        );
        let Request::Batch(subs) = parse_request(&line).unwrap() else {
            panic!("expected a batch");
        };
        assert_eq!(subs[0].as_ref().unwrap().trace, Some(ctx));
    }

    #[test]
    fn malformed_trace_fields_degrade_to_none() {
        for line in [
            r#"{"kind":"metrics","trace":"garbage"}"#,
            r#"{"kind":"metrics","trace":"1234-5678"}"#,
            r#"{"kind":"metrics","trace":12345}"#,
            r#"{"kind":"metrics","trace":true}"#,
            r#"{"kind":"metrics","trace":null}"#,
            r#"{"kind":"metrics","trace":{"trace":1}}"#,
        ] {
            let env = parse_envelope(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(env.trace, None, "{line}");
            assert_eq!(env.request, Request::Metrics, "{line}");
        }
    }

    #[test]
    fn error_response_shape() {
        let mut err = ServiceError::new(ErrorKind::Overloaded, "queue full");
        err.retry_after_ms = Some(50);
        let rendered = err.to_response().to_string();
        assert_eq!(
            rendered,
            "{\"error\":{\"kind\":\"overloaded\",\"message\":\"queue full\",\
             \"retry_after_ms\":50},\"ok\":false}"
        );
    }
}
