//! Cluster mode: static membership, consistent-hash ownership, and
//! peer forwarding with failure-driven rebalance.
//!
//! A cluster is a set of `samm-serve` nodes sharing one topology file
//! (see `docs/CLUSTER.md`). Every node builds the same [`HashRing`]
//! over the member ids, so each query fingerprint has exactly one owner
//! everyone agrees on. A node answers keys it owns (or already has
//! cached) locally and forwards the rest to the owner over the ordinary
//! wire protocol with the `fwd` marker set — the owner never forwards
//! again, so disagreeing ring views (mid-drain) cannot loop. A peer
//! that fails a forward is marked dead for [`DEAD_RETRY`] and its ring
//! arcs fall to their successors; the failed request is answered
//! locally (fallback), so a draining or crashed node degrades service
//! to local-compute rather than errors.

use std::net::SocketAddr;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use samm_core::fingerprint::Fingerprint;

use crate::client::Client;
use crate::json::Json;
use crate::protocol::{render_envelope, Envelope};
use crate::ring::HashRing;

/// How long a peer stays dead after a failed forward before the next
/// forward attempt probes it again (half-open).
pub const DEAD_RETRY: Duration = Duration::from_secs(5);

/// One member of the topology file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Unique node id (the `--node` flag selects ours).
    pub id: String,
    /// The node's serving address.
    pub addr: SocketAddr,
}

/// Parsed topology plus our own identity.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Every member, in file order.
    pub nodes: Vec<NodeSpec>,
    /// Index of this node in `nodes`.
    pub self_index: usize,
    /// Per-forward connect/read timeout.
    pub peer_timeout: Duration,
}

impl ClusterConfig {
    /// Parses a topology file: one `node-id address` pair per line,
    /// `#` comments and blank lines ignored. `self_id` must name one
    /// of the members.
    ///
    /// # Errors
    ///
    /// I/O failures, syntax errors, duplicate ids, unknown `self_id`,
    /// or fewer than two members.
    pub fn from_file(path: &Path, self_id: &str) -> std::io::Result<ClusterConfig> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text, self_id)
    }

    /// As [`ClusterConfig::from_file`], from in-memory text.
    ///
    /// # Errors
    ///
    /// As for [`ClusterConfig::from_file`].
    pub fn parse(text: &str, self_id: &str) -> std::io::Result<ClusterConfig> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut nodes: Vec<NodeSpec> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(id), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(bad(format!(
                    "topology line {}: expected 'node-id address', got '{line}'",
                    lineno + 1
                )));
            };
            let addr: SocketAddr = addr.parse().map_err(|e| {
                bad(format!(
                    "topology line {}: bad address '{addr}': {e}",
                    lineno + 1
                ))
            })?;
            if nodes.iter().any(|n| n.id == id) {
                return Err(bad(format!("duplicate node id '{id}'")));
            }
            nodes.push(NodeSpec {
                id: id.to_owned(),
                addr,
            });
        }
        if nodes.len() < 2 {
            return Err(bad(format!(
                "topology must list at least two nodes, found {}",
                nodes.len()
            )));
        }
        let self_index = nodes
            .iter()
            .position(|n| n.id == self_id)
            .ok_or_else(|| bad(format!("'--node {self_id}' is not in the topology file")))?;
        Ok(ClusterConfig {
            nodes,
            self_index,
            peer_timeout: Duration::from_secs(10),
        })
    }
}

/// One peer's connection pool plus its liveness state.
#[derive(Debug, Default)]
struct Peer {
    /// Idle connections, reused across forwards.
    pool: Mutex<Vec<Client>>,
    /// Set on forward failure; cleared after [`DEAD_RETRY`] or a
    /// successful probe.
    last_failure: Mutex<Option<Instant>>,
}

/// Live cluster state: the ring, peer pools, and liveness marks.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
    self_index: usize,
    ring: HashRing,
    peers: Vec<Peer>,
    peer_timeout: Duration,
}

/// A point-in-time cluster view for the `metrics` response and the
/// exposition.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// This node's id.
    pub self_id: String,
    /// Every member: (id, currently considered alive).
    pub nodes: Vec<(String, bool)>,
}

impl Cluster {
    /// Builds the ring and empty peer pools from a parsed config.
    pub fn new(config: ClusterConfig) -> Cluster {
        let ids: Vec<String> = config.nodes.iter().map(|n| n.id.clone()).collect();
        let peers = config.nodes.iter().map(|_| Peer::default()).collect();
        Cluster {
            ring: HashRing::build(&ids),
            nodes: config.nodes,
            self_index: config.self_index,
            peers,
            peer_timeout: config.peer_timeout,
        }
    }

    /// This node's id.
    pub fn self_id(&self) -> &str {
        &self.nodes[self.self_index].id
    }

    /// The id of node `index`.
    pub fn node_id(&self, index: usize) -> &str {
        &self.nodes[index].id
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the membership is empty (never true for a parsed
    /// config, which requires two nodes).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn is_alive(&self, index: usize) -> bool {
        if index == self.self_index {
            return true;
        }
        let last = self.peers[index]
            .last_failure
            .lock()
            .expect("peer liveness poisoned");
        match *last {
            Some(at) => at.elapsed() >= DEAD_RETRY,
            None => true,
        }
    }

    /// The node that owns `fp` under the current liveness view. Falls
    /// back to this node when every peer is dead.
    pub fn owner_of(&self, fp: Fingerprint) -> usize {
        self.ring
            .route_filtered(fp.raw(), |node| self.is_alive(node))
            .unwrap_or(self.self_index)
    }

    /// Whether this node owns `fp`.
    pub fn owns(&self, fp: Fingerprint) -> bool {
        self.owner_of(fp) == self.self_index
    }

    fn mark_dead(&self, index: usize) {
        *self.peers[index]
            .last_failure
            .lock()
            .expect("peer liveness poisoned") = Some(Instant::now());
    }

    fn mark_alive(&self, index: usize) {
        *self.peers[index]
            .last_failure
            .lock()
            .expect("peer liveness poisoned") = None;
    }

    /// Forwards `env` to node `owner` with the `fwd` marker set and
    /// returns the peer's response. On any transport failure the peer
    /// is marked dead and `None` returned — the caller answers
    /// locally; the failure itself is recorded on the peer's liveness
    /// mark, so no error detail is surfaced here.
    pub fn forward(&self, owner: usize, env: &Envelope) -> Option<Json> {
        debug_assert_ne!(owner, self.self_index, "never forward to self");
        let mut forwarded = env.clone();
        forwarded.fwd = true;
        let line = render_envelope(&forwarded).to_string();
        let pooled = self.peers[owner]
            .pool
            .lock()
            .expect("peer pool poisoned")
            .pop();
        let mut client = match pooled {
            Some(client) => client,
            None => match Client::connect(self.nodes[owner].addr, self.peer_timeout) {
                Ok(client) => client,
                Err(_) => {
                    self.mark_dead(owner);
                    return None;
                }
            },
        };
        match client.request_raw(&line) {
            Ok(response) => {
                self.mark_alive(owner);
                self.peers[owner]
                    .pool
                    .lock()
                    .expect("peer pool poisoned")
                    .push(client);
                Some(response)
            }
            Err(_) => {
                // The pooled connection may simply have idled out;
                // retry once on a fresh connection before declaring
                // the peer dead.
                drop(client);
                match Client::connect(self.nodes[owner].addr, self.peer_timeout)
                    .and_then(|mut fresh| fresh.request_raw(&line).map(|r| (fresh, r)))
                {
                    Ok((fresh, response)) => {
                        self.mark_alive(owner);
                        self.peers[owner]
                            .pool
                            .lock()
                            .expect("peer pool poisoned")
                            .push(fresh);
                        Some(response)
                    }
                    Err(_) => {
                        self.mark_dead(owner);
                        None
                    }
                }
            }
        }
    }

    /// The current membership/liveness view.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            self_id: self.self_id().to_owned(),
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (n.id.clone(), self.is_alive(i)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPO: &str = "# test ring\nn1 127.0.0.1:7101\nn2 127.0.0.1:7102\n\nn3 127.0.0.1:7103\n";

    #[test]
    fn topology_parses_and_identifies_self() {
        let config = ClusterConfig::parse(TOPO, "n2").unwrap();
        assert_eq!(config.nodes.len(), 3);
        assert_eq!(config.self_index, 1);
        assert_eq!(config.nodes[2].id, "n3");
        assert_eq!(config.nodes[2].addr, "127.0.0.1:7103".parse().unwrap());
    }

    #[test]
    fn topology_rejects_bad_input() {
        for (text, own) in [
            ("n1 127.0.0.1:1 extra\nn2 127.0.0.1:2\n", "n1"),
            ("n1 not-an-addr\nn2 127.0.0.1:2\n", "n1"),
            ("n1 127.0.0.1:1\nn1 127.0.0.1:2\n", "n1"),
            ("n1 127.0.0.1:1\n", "n1"),
            (TOPO, "n9"),
        ] {
            assert!(ClusterConfig::parse(text, own).is_err(), "{text:?}");
        }
    }

    #[test]
    fn ownership_is_consistent_across_members() {
        let views: Vec<Cluster> = ["n1", "n2", "n3"]
            .iter()
            .map(|id| Cluster::new(ClusterConfig::parse(TOPO, id).unwrap()))
            .collect();
        let mut owned = [0usize; 3];
        for key in 0..3_000u128 {
            let fp = {
                let mut h = samm_core::fingerprint::FingerprintHasher::new();
                h.write_bytes(&key.to_le_bytes());
                h.finish()
            };
            let owner = views[0].owner_of(fp);
            for view in &views[1..] {
                assert_eq!(view.owner_of(fp), owner, "ring views must agree");
            }
            assert!(views[owner].owns(fp), "the owner must claim its keys");
            owned[owner] += 1;
        }
        assert!(owned.iter().all(|&n| n > 0), "skewed: {owned:?}");
    }

    #[test]
    fn dead_peers_shift_ownership_until_retry() {
        let cluster = Cluster::new(ClusterConfig::parse(TOPO, "n1").unwrap());
        let fp = {
            let mut h = samm_core::fingerprint::FingerprintHasher::new();
            h.write_bytes(b"some key");
            h.finish()
        };
        let primary = cluster.owner_of(fp);
        if primary != cluster.self_index {
            cluster.mark_dead(primary);
            let fallback = cluster.owner_of(fp);
            assert_ne!(fallback, primary, "dead owner must shed the key");
            let snapshot = cluster.snapshot();
            assert!(!snapshot.nodes[primary].1);
            cluster.mark_alive(primary);
            assert_eq!(cluster.owner_of(fp), primary);
        }
        // With every peer dead, all keys land here.
        cluster.mark_dead(1);
        cluster.mark_dead(2);
        assert_eq!(cluster.owner_of(fp), cluster.self_index);
        assert!(cluster.owns(fp));
    }
}
