//! `samm-top` — live terminal dashboard for a running `samm-serve`.
//!
//! ```text
//! samm-top [--addr HOST:PORT] [--interval-ms N] [--once] [--cluster]
//! ```
//!
//! Polls the service's `metrics` request on one persistent connection
//! and renders an ANSI dashboard: throughput (deltas between polls plus
//! the server's own 5-second rate window), per-kind latency quantiles,
//! cache hit rate, queue depth and overload rejections, and closure
//! rule-application rates. `--once` prints a single snapshot without
//! clearing the screen — the mode CI uses to smoke-test the pipeline.
//!
//! `--cluster` switches the poll to `metrics_cluster`: the addressed
//! node fans the request out to every ring peer and returns per-node
//! histogram snapshots plus their exact merge, so the dashboard shows
//! one fleet-wide latency table instead of a single node's view.
//!
//! The dashboard is std-only: no curses, no external crates. It redraws
//! with plain ANSI escapes (`ESC[2J` clear, `ESC[H` home), so any VT100
//! terminal works.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use samm_core::telemetry::HistogramSnapshot;
use samm_serve::client::Client;
use samm_serve::json::Json;
use samm_serve::telemetry::snapshot_from_json;

const TIMEOUT: Duration = Duration::from_secs(10);

fn usage() -> ! {
    eprintln!("usage: samm-top [--addr HOST:PORT] [--interval-ms N] [--once] [--cluster]");
    std::process::exit(2);
}

struct Options {
    addr: String,
    interval: Duration,
    once: bool,
    cluster: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7477".to_owned(),
            interval: Duration::from_millis(1000),
            once: false,
            cluster: false,
        }
    }
}

/// The numbers one poll extracts from the `metrics` response. Missing
/// fields read as zero so the dashboard degrades gracefully against
/// older servers.
#[derive(Default, Clone)]
struct Sample {
    requests: f64,
    monitoring: f64,
    errors: f64,
    overloaded: f64,
    uptime_secs: f64,
    queue_depth: f64,
    rate_5s: f64,
    slow_queries: f64,
    cache_hits: f64,
    cache_misses: f64,
    cache_entries: f64,
    rule_a: f64,
    rule_b: f64,
    rule_c: f64,
    closure_rounds: f64,
    explored: f64,
    forks: f64,
    deduped: f64,
    /// Per kind: (hit, miss, overbudget, errors, p50, p90, p99, max) —
    /// latencies in milliseconds.
    kinds: Vec<(String, [f64; 8])>,
    /// Present when the server runs in cluster mode.
    cluster: Option<ClusterSample>,
}

/// The `cluster` object of a cluster-mode `metrics` response.
#[derive(Default, Clone)]
struct ClusterSample {
    self_id: String,
    /// (node id, believed alive) for every ring member.
    nodes: Vec<(String, bool)>,
    forwards: f64,
    fallbacks: f64,
    singleflight_waits: f64,
}

fn num(value: Option<&Json>) -> f64 {
    value.and_then(Json::as_f64).unwrap_or(0.0)
}

fn extract(metrics: &Json) -> Sample {
    let mut sample = Sample {
        requests: num(metrics.get("requests")),
        monitoring: num(metrics.get("monitoring")),
        errors: num(metrics.get("errors")),
        overloaded: num(metrics.get("overloaded")),
        ..Sample::default()
    };
    if let Some(cache) = metrics.get("cache") {
        sample.cache_hits = num(cache.get("hits"));
        sample.cache_misses = num(cache.get("misses"));
        sample.cache_entries = num(cache.get("entries"));
    }
    if let Some(cluster) = metrics.get("cluster") {
        sample.cluster = Some(ClusterSample {
            self_id: cluster
                .get("self")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            nodes: cluster
                .get("nodes")
                .and_then(Json::as_arr)
                .map(|nodes| {
                    nodes
                        .iter()
                        .map(|n| {
                            (
                                n.get("id").and_then(Json::as_str).unwrap_or("?").to_owned(),
                                n.get("alive").and_then(Json::as_bool).unwrap_or(false),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default(),
            forwards: num(cluster.get("forwards")),
            fallbacks: num(cluster.get("fallbacks")),
            singleflight_waits: num(cluster.get("singleflight_waits")),
        });
    }
    let Some(telemetry) = metrics.get("telemetry") else {
        return sample;
    };
    sample.uptime_secs = num(telemetry.get("uptime_secs"));
    sample.queue_depth = num(telemetry.get("queue_depth"));
    sample.rate_5s = num(telemetry.get("rate_5s"));
    sample.slow_queries = num(telemetry.get("slow_queries"));
    if let Some(rules) = telemetry.get("rules") {
        sample.rule_a = num(rules.get("rule_a"));
        sample.rule_b = num(rules.get("rule_b"));
        sample.rule_c = num(rules.get("rule_c"));
        sample.closure_rounds = num(rules.get("closure_rounds"));
    }
    if let Some(enumeration) = telemetry.get("enumeration") {
        sample.explored = num(enumeration.get("explored"));
        sample.forks = num(enumeration.get("forks"));
        sample.deduped = num(enumeration.get("deduped"));
    }
    if let Some(Json::Obj(kinds)) = telemetry.get("kinds") {
        for (name, k) in kinds {
            sample.kinds.push((
                name.clone(),
                [
                    num(k.get("hit")),
                    num(k.get("miss")),
                    num(k.get("overbudget")),
                    num(k.get("errors")),
                    num(k.get("p50_ms")),
                    num(k.get("p90_ms")),
                    num(k.get("p99_ms")),
                    num(k.get("max_ms")),
                ],
            ));
        }
    }
    sample
}

/// One ring member's row in a `metrics_cluster` response: liveness,
/// raw request count, and quantiles over the node's merged per-kind
/// latency histograms.
#[derive(Default, Clone)]
struct NodeRow {
    node: String,
    up: bool,
    requests: f64,
    /// Latency-tracked requests (sum of per-kind histogram counts).
    tracked: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// The fleet view one `metrics_cluster` poll extracts: per-node rows
/// plus the aggregator's exact merge of every node's histograms.
#[derive(Default, Clone)]
struct FleetView {
    aggregator: String,
    nodes: Vec<NodeRow>,
    requests: f64,
    /// Per kind: (count, p50 ms, p99 ms, max ms) over the whole fleet.
    kinds: Vec<(String, [f64; 4])>,
}

fn extract_fleet(resp: &Json) -> FleetView {
    let mut view = FleetView {
        aggregator: resp
            .get("node")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned(),
        ..FleetView::default()
    };
    if let Some(nodes) = resp.get("nodes").and_then(Json::as_arr) {
        for n in nodes {
            let mut row = NodeRow {
                node: n
                    .get("node")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                up: n.get("up").and_then(Json::as_bool).unwrap_or(false),
                requests: num(n.get("requests")),
                ..NodeRow::default()
            };
            // Quantiles come from the node's merged histograms — merge
            // is exact bucket addition, so cross-kind merging is sound.
            if let Some(Json::Obj(kinds)) = n.get("kinds") {
                let mut merged = HistogramSnapshot::default();
                for k in kinds.values() {
                    if let Some(snap) = snapshot_from_json(k) {
                        merged.merge(&snap);
                    }
                }
                row.tracked = merged.count as f64;
                row.p50_ms = merged.quantile(0.50) as f64 / 1e6;
                row.p99_ms = merged.quantile(0.99) as f64 / 1e6;
            }
            view.nodes.push(row);
        }
    }
    if let Some(fleet) = resp.get("fleet") {
        view.requests = num(fleet.get("requests"));
        if let Some(Json::Obj(kinds)) = fleet.get("kinds") {
            for (name, k) in kinds {
                view.kinds.push((
                    name.clone(),
                    [
                        num(k.get("count")),
                        num(k.get("p50_ms")),
                        num(k.get("p99_ms")),
                        num(k.get("max")) / 1e6,
                    ],
                ));
            }
        }
    }
    view
}

fn render_fleet(view: &FleetView, addr: &str) -> String {
    let up = view.nodes.iter().filter(|n| n.up).count();
    let mut out = format!(
        "samm-top --cluster — {addr}   aggregator {}   nodes up {up}/{}   fleet req {}\n\n",
        view.aggregator,
        view.nodes.len(),
        view.requests as u64,
    );
    out.push_str(&format!(
        "{:<12} {:>5} {:>10} {:>10} {:>9} {:>9}\n",
        "node", "up", "requests", "tracked", "p50 ms", "p99 ms"
    ));
    for n in &view.nodes {
        if !n.up {
            out.push_str(&format!("{:<12} {:>5} (unreachable)\n", n.node, "no"));
            continue;
        }
        out.push_str(&format!(
            "{:<12} {:>5} {:>10} {:>10} {:>9.3} {:>9.3}\n",
            n.node, "yes", n.requests as u64, n.tracked as u64, n.p50_ms, n.p99_ms,
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>10} {:>9} {:>9} {:>9}\n",
        "fleet kind", "count", "p50 ms", "p99 ms", "max ms"
    ));
    for (name, k) in &view.kinds {
        if k[0] == 0.0 {
            out.push_str(&format!("{name:<12} {:>10} (idle)\n", "-"));
            continue;
        }
        out.push_str(&format!(
            "{name:<12} {:>10} {:>9.3} {:>9.3} {:>9.3}\n",
            k[0] as u64, k[1], k[2], k[3],
        ));
    }
    out
}

fn fmt_uptime(secs: f64) -> String {
    let total = secs as u64;
    format!(
        "{}:{:02}:{:02}",
        total / 3600,
        (total / 60) % 60,
        total % 60
    )
}

fn render(sample: &Sample, previous: Option<(&Sample, Duration)>, addr: &str) -> String {
    let mut out = String::new();
    // Observed request rate from the delta between our own polls; the
    // server's 5-second window is shown alongside as `rate5s`.
    let observed = previous
        .map(|(prev, dt)| {
            let dt = dt.as_secs_f64().max(1e-9);
            (sample.requests - prev.requests).max(0.0) / dt
        })
        .unwrap_or(0.0);
    let rule_rate = previous
        .map(|(prev, dt)| {
            let dt = dt.as_secs_f64().max(1e-9);
            let delta = (sample.rule_a + sample.rule_b + sample.rule_c)
                - (prev.rule_a + prev.rule_b + prev.rule_c);
            delta.max(0.0) / dt
        })
        .unwrap_or(0.0);
    let lookups = sample.cache_hits + sample.cache_misses;
    let hit_rate = if lookups > 0.0 {
        100.0 * sample.cache_hits / lookups
    } else {
        0.0
    };

    out.push_str(&format!(
        "samm-top — {addr}   uptime {}   req {}   mon {}   err {}\n",
        fmt_uptime(sample.uptime_secs),
        sample.requests as u64,
        sample.monitoring as u64,
        sample.errors as u64,
    ));
    out.push_str(&format!(
        "rate {observed:8.1}/s (poll)  {:8.1}/s (rate5s)   queue {}   overloaded {}   slow {}\n",
        sample.rate_5s,
        sample.queue_depth as u64,
        sample.overloaded as u64,
        sample.slow_queries as u64,
    ));
    out.push_str(&format!(
        "cache  hits {}  misses {}  entries {}  hit-rate {hit_rate:5.1}%\n",
        sample.cache_hits as u64, sample.cache_misses as u64, sample.cache_entries as u64,
    ));
    out.push_str(&format!(
        "rules  a {}  b {}  c {}  rounds {}  ({rule_rate:.0} edges/s)   enum  explored {}  forks {}  deduped {}\n",
        sample.rule_a as u64,
        sample.rule_b as u64,
        sample.rule_c as u64,
        sample.closure_rounds as u64,
        sample.explored as u64,
        sample.forks as u64,
        sample.deduped as u64,
    ));
    if let Some(cluster) = &sample.cluster {
        let peers: Vec<String> = cluster
            .nodes
            .iter()
            .filter(|(id, _)| *id != cluster.self_id)
            .map(|(id, alive)| format!("{id}{}", if *alive { "" } else { "(down)" }))
            .collect();
        out.push_str(&format!(
            "cluster  self {}  peers [{}]  forwards {}  fallbacks {}  sf-waits {}\n",
            cluster.self_id,
            peers.join(" "),
            cluster.forwards as u64,
            cluster.fallbacks as u64,
            cluster.singleflight_waits as u64,
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>8} {:>8} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9}\n",
        "kind", "hit", "miss", "overbdg", "err", "p50 ms", "p90 ms", "p99 ms", "max ms"
    ));
    for (name, k) in &sample.kinds {
        let seen = k[0] + k[1] + k[2] + k[3];
        if seen == 0.0 {
            out.push_str(&format!("{name:<12} {:>8} (idle)\n", "-"));
            continue;
        }
        out.push_str(&format!(
            "{name:<12} {:>8} {:>8} {:>8} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
            k[0] as u64, k[1] as u64, k[2] as u64, k[3] as u64, k[4], k[5], k[6], k[7],
        ));
    }
    out
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => opts.addr = addr,
                None => usage(),
            },
            "--interval-ms" => {
                let ms: u64 = match args.next().and_then(|v| v.parse().ok()) {
                    Some(ms) => ms,
                    None => usage(),
                };
                opts.interval = Duration::from_millis(ms.max(50));
            }
            "--once" => opts.once = true,
            "--cluster" => opts.cluster = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("samm-top: unknown argument '{other}'");
                usage();
            }
        }
    }

    let addr: SocketAddr = match opts.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("samm-top: cannot resolve '{}'", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(addr, TIMEOUT) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("samm-top: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let poll_line = if opts.cluster {
        r#"{"kind":"metrics_cluster"}"#
    } else {
        r#"{"kind":"metrics"}"#
    };
    let mut previous: Option<(Sample, Instant)> = None;
    loop {
        let metrics = match client.request_raw(poll_line) {
            Ok(metrics) => metrics,
            Err(e) => {
                eprintln!("samm-top: metrics request failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if metrics.get("ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("samm-top: server refused metrics: {metrics}");
            return ExitCode::FAILURE;
        }
        if opts.cluster {
            let frame = render_fleet(&extract_fleet(&metrics), &opts.addr);
            if opts.once {
                print!("{frame}");
                return ExitCode::SUCCESS;
            }
            print!("\x1b[2J\x1b[H{frame}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            std::thread::sleep(opts.interval);
            continue;
        }
        let sample = extract(&metrics);
        let now = Instant::now();
        let frame = render(
            &sample,
            previous
                .as_ref()
                .map(|(prev, at)| (prev, now.duration_since(*at))),
            &opts.addr,
        );
        if opts.once {
            print!("{frame}");
            return ExitCode::SUCCESS;
        }
        // Clear + home, then the frame; q to quit is deliberately not
        // implemented (std has no raw-mode terminal) — ^C works.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        previous = Some((sample, now));
        std::thread::sleep(opts.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_reads_a_metrics_response() {
        let line = r#"{"ok":true,"kind":"metrics","requests":7,"monitoring":2,
            "errors":1,"overloaded":0,
            "cache":{"hits":3,"misses":4,"evictions":0,"insertions":4,"entries":4,"hit_rate":0.4286},
            "cluster":{"self":"node-a",
              "nodes":[{"id":"node-a","alive":true},{"id":"node-b","alive":true},
                       {"id":"node-c","alive":false}],
              "forwards":12,"fallbacks":1,"singleflight_waits":3},
            "telemetry":{"uptime_secs":12.5,"queue_depth":1,"monitoring":2,
              "slow_queries":1,"rate_5s":0.8,
              "kinds":{"enumerate":{"hit":3,"miss":4,"overbudget":0,"errors":1,
                "p50_ms":0.5,"p90_ms":1.5,"p99_ms":2.0,"max_ms":2.5,"mean_ms":0.9}},
              "rules":{"rule_a":10,"rule_b":20,"rule_c":30,"closure_rounds":5,
                "candidate_calls":7,"candidate_stores":9},
              "enumeration":{"explored":100,"forks":120,"deduped":20}}}"#;
        let metrics = samm_serve::json::parse(line).unwrap();
        let sample = extract(&metrics);
        assert_eq!(sample.requests, 7.0);
        assert_eq!(sample.monitoring, 2.0);
        assert_eq!(sample.cache_hits, 3.0);
        assert_eq!(sample.rule_c, 30.0);
        assert_eq!(sample.explored, 100.0);
        assert_eq!(sample.kinds.len(), 1);
        let (name, k) = &sample.kinds[0];
        assert_eq!(name, "enumerate");
        assert_eq!(k[0], 3.0);
        assert_eq!(k[4], 0.5);

        let cluster = sample.cluster.as_ref().expect("cluster object extracted");
        assert_eq!(cluster.self_id, "node-a");
        assert_eq!(cluster.nodes.len(), 3);
        assert_eq!(cluster.forwards, 12.0);

        let frame = render(&sample, None, "test:0");
        assert!(frame.contains("enumerate"));
        assert!(frame.contains("hit-rate"));
        assert!(
            frame.contains("self node-a  peers [node-b node-c(down)]"),
            "{frame}"
        );

        let mut later = sample.clone();
        later.requests = 17.0;
        later.rule_a = 110.0;
        let frame = render(&later, Some((&sample, Duration::from_secs(2))), "test:0");
        // 10 more requests over 2 s -> 5.0/s observed.
        assert!(frame.contains("5.0/s (poll)"), "{frame}");
    }

    #[test]
    fn extract_reads_a_metrics_cluster_response() {
        use samm_core::telemetry::Histogram;
        use samm_serve::telemetry::snapshot_to_json;

        let hist = Histogram::new();
        for us in [100u64, 200, 400] {
            hist.record(us * 1_000);
        }
        let snap = snapshot_to_json(&hist.snapshot());
        let node = |id: &str, req: f64| {
            Json::obj([
                ("node", Json::str(id)),
                ("up", Json::Bool(true)),
                ("requests", Json::num(req)),
                ("kinds", Json::obj([("enumerate", snap.clone())])),
            ])
        };
        let mut fleet_kind = snap.clone();
        if let Json::Obj(fields) = &mut fleet_kind {
            fields.insert("p50_ms".to_owned(), Json::num(0.2));
            fields.insert("p99_ms".to_owned(), Json::num(0.4));
        }
        let resp = Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("metrics_cluster")),
            ("node", Json::str("node-a")),
            (
                "nodes",
                Json::Arr(vec![
                    node("node-a", 5.0),
                    node("node-b", 7.0),
                    Json::obj([
                        ("node", Json::str("node-c")),
                        ("up", Json::Bool(false)),
                        ("requests", Json::num(0.0)),
                    ]),
                ]),
            ),
            (
                "fleet",
                Json::obj([
                    ("requests", Json::num(12.0)),
                    ("kinds", Json::obj([("enumerate", fleet_kind)])),
                ]),
            ),
        ]);

        let view = extract_fleet(&resp);
        assert_eq!(view.aggregator, "node-a");
        assert_eq!(view.nodes.len(), 3);
        assert_eq!(view.requests, 12.0);
        assert_eq!(view.nodes[0].tracked, 3.0);
        assert!(view.nodes[0].p50_ms > 0.0);
        assert!(!view.nodes[2].up);
        assert_eq!(view.kinds.len(), 1);
        assert_eq!(view.kinds[0].1[0], 3.0);
        assert_eq!(view.kinds[0].1[1], 0.2);

        let frame = render_fleet(&view, "test:0");
        assert!(frame.contains("nodes up 2/3"), "{frame}");
        assert!(frame.contains("fleet req 12"), "{frame}");
        assert!(frame.contains("node-c"), "{frame}");
        assert!(frame.contains("unreachable"), "{frame}");
        assert!(frame.contains("enumerate"), "{frame}");
    }
}
