//! `samm-serve` — host the litmus-query service.
//!
//! ```text
//! samm-serve [--io event|threaded] [--addr HOST:PORT] [--workers N]
//!            [--event-loops N] [--max-connections N] [--max-pipeline N]
//!            [--poller epoll|poll] [--cluster FILE --node ID]
//!            [--queue-capacity N] [--read-timeout-secs N] [--budget N]
//!            [--cache-shards N] [--cache-capacity N] [--persist PATH]
//!            [--prom-addr HOST:PORT] [--slow-log PATH] [--slow-ms N]
//!            [--slow-log-max-bytes N] [--trace-log PATH]
//!            [--trace-log-max-bytes N] [--no-observe]
//! ```
//!
//! The default `--io event` core multiplexes connections over a
//! readiness poller (pipelining, `batch` envelopes, cluster mode); the
//! legacy `--io threaded` core keeps one worker per connection with a
//! bounded accept queue. Prints `listening on <addr>` once bound (and
//! `prometheus on <addr>` when `--prom-addr` was given), then serves
//! until a client sends `{"kind":"shutdown"}`; the process drains
//! in-flight work, persists the cache when `--persist` was given, and
//! exits 0.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use samm_serve::cluster::ClusterConfig;
use samm_serve::event_loop::{self, EventConfig};
use samm_serve::server::{self, ServerConfig};
use samm_serve::sys::PollerKind;

fn usage() -> ! {
    eprintln!(
        "usage: samm-serve [--io event|threaded] [--addr HOST:PORT] [--workers N]\n\
         \x20                 [--event-loops N] [--max-connections N] [--max-pipeline N]\n\
         \x20                 [--poller epoll|poll] [--cluster FILE --node ID]\n\
         \x20                 [--queue-capacity N] [--read-timeout-secs N] [--budget N]\n\
         \x20                 [--cache-shards N] [--cache-capacity N] [--persist PATH]\n\
         \x20                 [--prom-addr HOST:PORT] [--slow-log PATH] [--slow-ms N]\n\
         \x20                 [--slow-log-max-bytes N] [--trace-log PATH]\n\
         \x20                 [--trace-log-max-bytes N] [--no-observe]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("samm-serve: {flag} needs a numeric argument");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut event = EventConfig::default();
    let mut io_core = "event".to_owned();
    let mut cluster_file: Option<PathBuf> = None;
    let mut node_id: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--io" => match args.next().as_deref() {
                Some(core @ ("event" | "threaded")) => io_core = core.to_owned(),
                _ => {
                    eprintln!("samm-serve: --io needs 'event' or 'threaded'");
                    usage();
                }
            },
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => usage(),
            },
            "--workers" => config.workers = parse_num("--workers", args.next()),
            "--event-loops" => event.loops = parse_num("--event-loops", args.next()),
            "--max-connections" => {
                event.max_connections = parse_num("--max-connections", args.next());
            }
            "--max-pipeline" => event.max_pipeline = parse_num("--max-pipeline", args.next()),
            "--poller" => match args.next().and_then(|p| PollerKind::parse(&p)) {
                Some(kind) => event.poller = kind,
                None => {
                    eprintln!("samm-serve: --poller needs 'epoll' or 'poll'");
                    usage();
                }
            },
            "--cluster" => match args.next() {
                Some(path) => cluster_file = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--node" => match args.next() {
                Some(id) => node_id = Some(id),
                None => usage(),
            },
            "--queue-capacity" => {
                config.queue_capacity = parse_num("--queue-capacity", args.next());
            }
            "--read-timeout-secs" => {
                config.read_timeout =
                    Duration::from_secs(parse_num("--read-timeout-secs", args.next()));
            }
            "--budget" => config.budget = Some(parse_num("--budget", args.next())),
            "--cache-shards" => config.cache_shards = parse_num("--cache-shards", args.next()),
            "--cache-capacity" => {
                config.cache_capacity = parse_num("--cache-capacity", args.next());
            }
            "--persist" => match args.next() {
                Some(path) => config.persist_path = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--prom-addr" => match args.next() {
                Some(addr) => config.prom_addr = Some(addr),
                None => usage(),
            },
            "--slow-log" => match args.next() {
                Some(path) => config.slow_log = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--slow-ms" => {
                config.slow_threshold = Duration::from_millis(parse_num("--slow-ms", args.next()));
            }
            "--slow-log-max-bytes" => {
                config.slow_log_max_bytes = parse_num("--slow-log-max-bytes", args.next());
            }
            "--trace-log" => match args.next() {
                Some(path) => config.trace_log = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--trace-log-max-bytes" => {
                config.trace_log_max_bytes = parse_num("--trace-log-max-bytes", args.next());
            }
            "--no-observe" => config.observe = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("samm-serve: unknown argument '{other}'");
                usage();
            }
        }
    }

    match (&cluster_file, &node_id) {
        (Some(path), Some(id)) => match ClusterConfig::from_file(path, id) {
            Ok(cluster) => event.cluster = Some(cluster),
            Err(e) => {
                eprintln!("samm-serve: bad cluster topology: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => {}
        _ => {
            eprintln!("samm-serve: --cluster and --node must be given together");
            usage();
        }
    }
    if event.cluster.is_some() && io_core != "event" {
        eprintln!("samm-serve: cluster mode requires the event core (--io event)");
        return ExitCode::FAILURE;
    }

    if io_core == "threaded" {
        let handle = match server::start(config) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("samm-serve: failed to start: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("listening on {} (threaded core)", handle.addr());
        if let Some(prom) = handle.prom_addr() {
            println!("prometheus on {prom}");
        }
        return match handle.join() {
            Ok(()) => {
                println!("drained; bye");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("samm-serve: shutdown error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let poller = event.poller;
    let node = event
        .cluster
        .as_ref()
        .map(|c| c.nodes[c.self_index].id.clone());
    let handle = match event_loop::start(config, event) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("samm-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &node {
        Some(id) => println!(
            "listening on {} (event core, {}, cluster node {id})",
            handle.addr(),
            poller.name()
        ),
        None => println!(
            "listening on {} (event core, {})",
            handle.addr(),
            poller.name()
        ),
    }
    if let Some(prom) = handle.prom_addr() {
        println!("prometheus on {prom}");
    }
    match handle.join() {
        Ok(()) => {
            println!("drained; bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("samm-serve: shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}
