//! `samm-serve` — host the litmus-query service.
//!
//! ```text
//! samm-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!            [--read-timeout-secs N] [--budget N] [--cache-shards N]
//!            [--cache-capacity N] [--persist PATH]
//!            [--prom-addr HOST:PORT] [--slow-log PATH] [--slow-ms N]
//!            [--slow-log-max-bytes N] [--no-observe]
//! ```
//!
//! Prints `listening on <addr>` once bound (and `prometheus on <addr>`
//! when `--prom-addr` was given), then serves until a client sends
//! `{"kind":"shutdown"}`; the process drains in-flight work, persists
//! the cache when `--persist` was given, and exits 0.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use samm_serve::server::{self, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: samm-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]\n\
         \x20                 [--read-timeout-secs N] [--budget N] [--cache-shards N]\n\
         \x20                 [--cache-capacity N] [--persist PATH]\n\
         \x20                 [--prom-addr HOST:PORT] [--slow-log PATH] [--slow-ms N]\n\
         \x20                 [--slow-log-max-bytes N] [--no-observe]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("samm-serve: {flag} needs a numeric argument");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => usage(),
            },
            "--workers" => config.workers = parse_num("--workers", args.next()),
            "--queue-capacity" => {
                config.queue_capacity = parse_num("--queue-capacity", args.next());
            }
            "--read-timeout-secs" => {
                config.read_timeout =
                    Duration::from_secs(parse_num("--read-timeout-secs", args.next()));
            }
            "--budget" => config.budget = Some(parse_num("--budget", args.next())),
            "--cache-shards" => config.cache_shards = parse_num("--cache-shards", args.next()),
            "--cache-capacity" => {
                config.cache_capacity = parse_num("--cache-capacity", args.next());
            }
            "--persist" => match args.next() {
                Some(path) => config.persist_path = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--prom-addr" => match args.next() {
                Some(addr) => config.prom_addr = Some(addr),
                None => usage(),
            },
            "--slow-log" => match args.next() {
                Some(path) => config.slow_log = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--slow-ms" => {
                config.slow_threshold = Duration::from_millis(parse_num("--slow-ms", args.next()));
            }
            "--slow-log-max-bytes" => {
                config.slow_log_max_bytes = parse_num("--slow-log-max-bytes", args.next());
            }
            "--no-observe" => config.observe = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("samm-serve: unknown argument '{other}'");
                usage();
            }
        }
    }

    let handle = match server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("samm-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    if let Some(prom) = handle.prom_addr() {
        println!("prometheus on {prom}");
    }
    match handle.join() {
        Ok(()) => {
            println!("drained; bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("samm-serve: shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}
