//! Consistent-hash ring over [`samm_core::fingerprint`] keys.
//!
//! Each node contributes [`VNODES`] virtual points hashed from its node
//! id with the same FNV-1a/128 hasher that fingerprints queries, so key
//! placement is deterministic across every node that shares the
//! topology file. A key routes to the first ring point at or after its
//! fingerprint (wrapping); removing a node (drain, crash) reassigns
//! only that node's arcs to their successors, which is what keeps a
//! drain from reshuffling the whole cluster's cache.

use samm_core::fingerprint::FingerprintHasher;

/// Virtual points per node. 64 keeps the expected per-node share within
/// a few percent of uniform for small clusters while the ring stays
/// tiny (N×64 points, binary-searched).
pub const VNODES: usize = 64;

/// The ring: sorted virtual points, each owned by a node index.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u128, usize)>,
}

impl HashRing {
    /// Builds the ring for `node_ids`, [`VNODES`] points per node.
    /// Identical id lists produce identical rings on every node.
    pub fn build(node_ids: &[String]) -> HashRing {
        let mut points = Vec::with_capacity(node_ids.len() * VNODES);
        for (index, id) in node_ids.iter().enumerate() {
            for vnode in 0..VNODES {
                let mut h = FingerprintHasher::new();
                h.write_bytes(id.as_bytes());
                h.write_u64(vnode as u64);
                points.push((h.finish().raw(), index));
            }
        }
        // Ties (hash collisions across nodes) resolve by node index so
        // every replica sorts identically.
        points.sort_unstable();
        HashRing { points }
    }

    /// The node owning `key`: the first point at or after it, wrapping.
    pub fn route(&self, key: u128) -> usize {
        let at = self.points.partition_point(|(hash, _)| *hash < key);
        let (_, node) = self.points[at % self.points.len()];
        node
    }

    /// As [`HashRing::route`], but skips points whose node fails the
    /// `alive` predicate — the drain/failure rebalance: a dead node's
    /// arcs fall to their ring successors. Returns `None` when no node
    /// is alive.
    pub fn route_filtered(&self, key: u128, alive: impl Fn(usize) -> bool) -> Option<usize> {
        let start = self.points.partition_point(|(hash, _)| *hash < key);
        (0..self.points.len())
            .map(|offset| self.points[(start + offset) % self.points.len()].1)
            .find(|node| alive(*node))
    }

    /// Total virtual points (nodes × [`VNODES`]).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("node-{i}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::build(&ids(3));
        let again = HashRing::build(&ids(3));
        assert_eq!(ring.len(), 3 * VNODES);
        for key in (0..10_000u128).map(|k| k.wrapping_mul(0x9E3779B97F4A7C15)) {
            let node = ring.route(key);
            assert!(node < 3);
            assert_eq!(node, again.route(key), "replicas must agree");
        }
    }

    #[test]
    fn shares_are_roughly_uniform() {
        let ring = HashRing::build(&ids(3));
        let mut counts = [0usize; 3];
        for key in 0..30_000u128 {
            // Spread test keys over the whole ring, not the low end.
            let mut h = FingerprintHasher::new();
            h.write_bytes(&key.to_le_bytes());
            counts[ring.route(h.finish().raw())] += 1;
        }
        for count in counts {
            // Expect ~10k per node; 64 vnodes keeps skew well within 2×.
            assert!(
                (5_000..=15_000).contains(&count),
                "share badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn dead_nodes_shed_only_their_own_arcs() {
        let ring = HashRing::build(&ids(3));
        for key in 0..5_000u128 {
            let mut h = FingerprintHasher::new();
            h.write_bytes(&key.to_le_bytes());
            let key = h.finish().raw();
            let primary = ring.route(key);
            let rerouted = ring.route_filtered(key, |node| node != 1).unwrap();
            assert_ne!(rerouted, 1);
            if primary != 1 {
                // Keys owned by live nodes must not move on a drain.
                assert_eq!(rerouted, primary);
            }
        }
        assert_eq!(ring.route_filtered(42, |_| false), None);
    }
}
