//! Request execution: turns a parsed [`Request`] into a response
//! [`Json`] against shared server state.
//!
//! Every enumeration-backed request is answered through the
//! content-addressed [`EnumCache`], so repeated queries for the same
//! (program, policy, config) fingerprint cost a hash lookup instead of a
//! fresh enumeration. Witness/refutation requests run fresh — their
//! artifacts are path-dependent and are not cached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use samm_analyze::robust::StaticVerdict;
use samm_core::cache::{cached_enumerate, EnumCache};
use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::error::EnumError;
use samm_core::explain::{find_witness, refute, Goal, Refutation, RefuteOutcome};
use samm_core::outcome::{Outcome, OutcomeSet};
use samm_core::parallel::enumerate_parallel;
use samm_core::pruned::enumerate_pruned;
use samm_core::telemetry::trace::{ActiveSpan, SpanKind, TraceContext};
use samm_core::telemetry::HistogramSnapshot;
use samm_litmus::catalog::{self, CatalogEntry, ModelSel};
use samm_litmus::expect::{
    run_entry_cached, run_entry_cached_parallel, run_entry_cached_pruned, EntryReport,
};

use crate::cluster::Cluster;
use crate::json::Json;
use crate::protocol::{EngineSel, Envelope, ErrorKind, Request, ServiceError};
use crate::telemetry::{
    kind_index, snapshot_from_json, snapshot_to_json, FleetSample, ReqOutcome, Telemetry,
    KIND_NAMES,
};

/// Monotonic counters the `metrics` request reports.
#[derive(Debug, Default)]
pub struct Counters {
    /// Service requests parsed and executed (including ones that
    /// failed) — *excluding* monitoring requests (`metrics` /
    /// `metrics_prom`), which are tallied in
    /// [`Counters::monitoring`] so self-observation never skews the
    /// service rates.
    pub requests: AtomicU64,
    /// Monitoring requests (`metrics` / `metrics_prom`).
    pub monitoring: AtomicU64,
    /// Requests answered with a structured error.
    pub errors: AtomicU64,
    /// Connections rejected because the queue was full.
    pub overloaded: AtomicU64,
}

/// State shared by every worker: the enumeration cache, the default
/// fork budget, the metrics counters, and the telemetry block.
#[derive(Debug)]
pub struct ServerState {
    /// The content-addressed enumeration cache.
    pub cache: EnumCache,
    /// Fork budget applied to requests that do not carry their own.
    pub default_budget: Option<u64>,
    /// Metrics counters.
    pub counters: Counters,
    /// Latency histograms, rates, obs aggregation, slow-query log.
    pub telemetry: Telemetry,
    /// Whether enumerations run instrumented
    /// ([`EnumConfig::observe`]), feeding the aggregated closure-rule
    /// counters. One server-wide setting so cache keys stay uniform.
    pub observe: bool,
    /// Cluster membership and peer pools when serving in cluster mode.
    pub cluster: Option<Arc<Cluster>>,
    /// Single-flight table: fingerprints with an enumeration currently
    /// running, so identical concurrent queries wait for the leader's
    /// cache insert instead of duplicating the work.
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
    /// Pre-rendered `outcomes`/`stats` response fragments keyed by
    /// fingerprint: the expensive parts of a warm enumerate response
    /// are identical on every hit, so they are rendered once and
    /// spliced as [`Json::Raw`] afterwards.
    rendered: Mutex<HashMap<u128, RenderedResult>>,
}

/// The fingerprint-invariant parts of an enumerate response, rendered.
#[derive(Debug, Clone)]
struct RenderedResult {
    outcomes: String,
    stats: String,
    outcome_count: usize,
    executions: usize,
}

/// Bound on [`ServerState::rendered`]: above this the memo is cleared
/// wholesale (entries re-render on their next hit). The enumerate
/// cache evicts on its own schedule, so precise mirroring is not worth
/// the bookkeeping — the memo just has to stay bounded.
const RENDERED_CAP: usize = 8192;

/// One in-flight enumeration other requests can wait on.
#[derive(Debug, Default)]
struct Flight {
    done: Mutex<bool>,
    finished: Condvar,
}

impl Flight {
    fn finish(&self) {
        *self.done.lock().expect("flight poisoned") = true;
        self.finished.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("flight poisoned");
        while !*done {
            done = self.finished.wait(done).expect("flight poisoned");
        }
    }
}

impl ServerState {
    /// Builds state with a cache of the given geometry, default
    /// telemetry (no slow log), and instrumentation on.
    pub fn new(cache: EnumCache, default_budget: Option<u64>) -> Self {
        ServerState::with_telemetry(cache, default_budget, Telemetry::default(), true)
    }

    /// Builds state with explicit telemetry and instrumentation
    /// settings.
    pub fn with_telemetry(
        cache: EnumCache,
        default_budget: Option<u64>,
        telemetry: Telemetry,
        observe: bool,
    ) -> Self {
        ServerState {
            cache,
            default_budget,
            counters: Counters::default(),
            telemetry,
            observe,
            cluster: None,
            flights: Mutex::new(HashMap::new()),
            rendered: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches cluster membership; enumerate-backed requests are then
    /// routed through the consistent-hash ring.
    pub fn set_cluster(&mut self, cluster: Arc<Cluster>) {
        self.cluster = Some(cluster);
    }

    /// The enumeration configuration for one request: server defaults,
    /// request budget override, executions never kept (only outcome
    /// sets travel over the wire).
    pub(crate) fn config(&self, budget: Option<u64>) -> EnumConfig {
        EnumConfig::builder()
            .keep_executions(false)
            .observe(self.observe)
            .budget(budget.or(self.default_budget))
            .build()
    }

    /// Renders the Prometheus exposition for the current state.
    pub fn render_prom(&self) -> String {
        let snapshot = self.cluster.as_ref().map(|c| c.snapshot());
        self.telemetry.render_prom(
            self.counters.overloaded.load(Ordering::Relaxed),
            &self.cache.stats(),
            &self.cache.shard_stats(),
            snapshot.as_ref(),
        )
    }
}

/// Executes one request with a server-assigned request id. Never panics
/// on bad input: failures come back as `{"ok":false,"error":{...}}`
/// objects. `Shutdown` is answered with a plain ok — the connection
/// loop, not this function, performs the drain.
pub fn handle(state: &ServerState, request: &Request) -> Json {
    handle_traced(state, request, None)
}

/// As [`handle`], echoing `id` (or a server-assigned one) in the
/// response and recording latency telemetry: per-kind histograms split
/// by hit/miss/overbudget, the request-rate window, and the slow-query
/// log.
pub fn handle_traced(state: &ServerState, request: &Request, id: Option<&str>) -> Json {
    handle_inner(state, request, id, false, true, None, None)
}

/// Executes a parsed envelope: as [`handle_traced`], honouring the
/// envelope's `fwd` marker (a forwarded request is answered locally,
/// never re-forwarded) and its propagated `trace` context. The entry
/// point cluster-aware servers use.
pub fn handle_envelope(state: &ServerState, envelope: &Envelope) -> Json {
    handle_inner(
        state,
        &envelope.request,
        envelope.id.as_deref(),
        envelope.fwd,
        true,
        envelope.trace,
        None,
    )
}

/// Executes one sub-request of a batch: per-kind latency telemetry and
/// the slow-query log still apply, but the top-level `requests` counter
/// does not — the batch line was already counted once. `id` is the
/// slot's effective id (the client's, or a `{parent}.{slot}` child id
/// derived by the batch layer), `ctx` the batch span's context, and
/// `parent` the enclosing envelope's id for the slow-query log. A
/// sub-envelope's own `trace` field, when present, wins over `ctx`.
pub(crate) fn handle_sub(
    state: &ServerState,
    envelope: &Envelope,
    fwd: bool,
    id: &str,
    ctx: Option<TraceContext>,
    parent: &str,
) -> Json {
    handle_inner(
        state,
        &envelope.request,
        Some(id),
        fwd,
        false,
        envelope.trace.or(ctx),
        Some(parent),
    )
}

#[allow(clippy::too_many_arguments)]
fn handle_inner(
    state: &ServerState,
    request: &Request,
    id: Option<&str>,
    fwd: bool,
    top_level: bool,
    ctx: Option<TraceContext>,
    batch_parent: Option<&str>,
) -> Json {
    let id = id.map_or_else(|| state.telemetry.ids.next_id(), str::to_owned);
    let kind = kind_index(request);
    match (kind, request) {
        (Some(_), _) | (None, Request::Shutdown) => {
            // Batch sub-requests are not re-counted: the batch line
            // itself was counted once at the top level.
            if top_level {
                state.counters.requests.fetch_add(1, Ordering::Relaxed);
            }
        }
        (None, _) => {
            // Monitoring traffic is tallied even inside batches — the
            // split exists so self-observation never skews `requests`.
            state.counters.monitoring.fetch_add(1, Ordering::Relaxed);
            state.telemetry.monitoring.fetch_add(1, Ordering::Relaxed);
        }
    };
    // A server span per latency-tracked request — skipped entirely when
    // tracing is off (no sink configured AND no propagated context), so
    // the untraced path pays nothing. With a context but no sink, span
    // ids still flow downstream so remote parentage stays intact.
    // Monitoring/control kinds are never spanned: a polling samm-top
    // must not flood the trace log.
    let mut span = if kind.is_some() && (state.telemetry.spans.is_some() || ctx.is_some()) {
        let mut span = match ctx {
            Some(ctx) => ActiveSpan::continue_trace(
                ctx,
                if top_level { "server" } else { "sub" },
                SpanKind::Server,
            ),
            None => ActiveSpan::root("server", SpanKind::Server),
        };
        if let Some(k) = kind {
            span.attr("req", KIND_NAMES[k]);
        }
        if fwd {
            span.attr("fwd", true);
        }
        if let Some(cluster) = &state.cluster {
            span.attr("node", cluster.self_id().to_owned());
        }
        Some(span)
    } else {
        None
    };
    let started = Instant::now();
    let result = match request {
        Request::Enumerate {
            test,
            model,
            budget,
            engine,
        } => enumerate_response(state, test, model, *budget, *engine, fwd, span.as_ref()),
        Request::Batch(subs) => Ok(crate::batch::execute(state, subs, fwd, &id, span.as_ref())),
        Request::Verdict {
            test,
            budget,
            engine,
        } => verdict_response(state, test, *budget, *engine),
        Request::Witness {
            test,
            model,
            condition,
            budget,
        } => witness_response(state, test, model, *condition, *budget),
        Request::Refutation {
            test,
            model,
            condition,
            budget,
        } => refutation_response(state, test, model, *condition, *budget),
        Request::Certify {
            test,
            model,
            robust,
        } => certify_response(state, test, model, *robust),
        Request::Metrics => Ok(metrics_response(state)),
        Request::MetricsCluster => Ok(metrics_cluster_response(state, fwd)),
        Request::MetricsProm => Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("metrics_prom")),
            ("text", Json::str(state.render_prom())),
        ])),
        Request::Shutdown => Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("shutdown")),
        ])),
    };
    let mut response = match result {
        Ok(response) => response,
        Err(err) => error_response(state, &err),
    };
    let elapsed = started.elapsed();
    if let Some(kind) = kind {
        let outcome = ReqOutcome::classify(&response);
        state.telemetry.record(kind, outcome, elapsed);
        state
            .telemetry
            .note_slow(&id, batch_parent, KIND_NAMES[kind], outcome, elapsed);
        if let Some(span) = &mut span {
            span.attr("outcome", outcome.label());
            span.attr("id", id.clone());
        }
    }
    if let (Some(span), Some(sink)) = (span, state.telemetry.span_sink()) {
        span.finish(sink);
    }
    if let Json::Obj(map) = &mut response {
        map.insert("id".to_owned(), Json::str(id));
    }
    response
}

/// Renders `err` as a response, counting it.
pub fn error_response(state: &ServerState, err: &ServiceError) -> Json {
    state.counters.errors.fetch_add(1, Ordering::Relaxed);
    err.to_response()
}

/// The catalog is immutable for the life of the process; building it
/// runs every litmus builder (~100µs), so memoize it once instead of
/// reconstructing it on every request.
fn cached_catalog() -> &'static [CatalogEntry] {
    static CATALOG: OnceLock<Vec<CatalogEntry>> = OnceLock::new();
    CATALOG.get_or_init(catalog::all)
}

pub(crate) fn find_entry(name: &str) -> Result<&'static CatalogEntry, ServiceError> {
    cached_catalog()
        .iter()
        .find(|e| e.test.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ServiceError::new(
                ErrorKind::UnknownTest,
                format!("no catalog entry named '{name}'"),
            )
        })
}

pub(crate) fn find_model(name: &str) -> Result<ModelSel, ServiceError> {
    ModelSel::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let known: Vec<&str> = ModelSel::ALL.iter().map(|m| m.name()).collect();
            ServiceError::new(
                ErrorKind::UnknownModel,
                format!("no model named '{name}' (known: {})", known.join(", ")),
            )
        })
}

fn enum_error(err: EnumError) -> ServiceError {
    match err {
        EnumError::Overbudget { budget, forks } => ServiceError::new(
            ErrorKind::Overbudget,
            format!("fork budget {budget} exhausted after {forks} forks"),
        ),
        other => ServiceError::new(ErrorKind::EnumFailed, other.to_string()),
    }
}

fn condition_goal(entry: &CatalogEntry, condition: usize) -> Result<(Goal, String), ServiceError> {
    let cond = entry.test.conditions.get(condition).ok_or_else(|| {
        ServiceError::new(
            ErrorKind::Malformed,
            format!(
                "test '{}' has {} condition(s); index {condition} is out of range",
                entry.test.name,
                entry.test.conditions.len()
            ),
        )
    })?;
    Ok((Goal::new(cond.clauses.clone()), cond.text.clone()))
}

fn outcomes_json(outcomes: &OutcomeSet) -> Json {
    let render = |o: &Outcome| {
        Json::Arr(
            (0..o.thread_count())
                .map(|t| {
                    Json::Arr(
                        o.thread_regs(t)
                            .iter()
                            .map(|v| Json::num(v.raw() as f64))
                            .collect(),
                    )
                })
                .collect(),
        )
    };
    Json::Arr(outcomes.iter().map(render).collect())
}

#[allow(clippy::too_many_arguments)]
fn enumerate_response(
    state: &ServerState,
    test: &str,
    model: &str,
    budget: Option<u64>,
    engine: EngineSel,
    fwd: bool,
    span: Option<&ActiveSpan>,
) -> Result<Json, ServiceError> {
    let entry = find_entry(test)?;
    let sel = find_model(model)?;
    let policy = sel.policy();
    let config = state.config(budget);
    let fp = samm_core::fingerprint::query_fingerprint(&entry.test.program, &policy, &config);

    // Cluster routing: keys owned elsewhere are forwarded — unless this
    // request was itself forwarded here (`fwd`), the key is already in
    // the local cache, or the owner is unreachable (fallback below).
    if let Some(cluster) = state.cluster.as_ref().filter(|_| !fwd) {
        let owner = cluster.owner_of(fp);
        if cluster.node_id(owner) != cluster.self_id() && !state.cache.contains(fp) {
            // The forward span is the parent the owning peer continues
            // under: its context travels in the envelope's trace field.
            let fwd_span = span.map(|s| s.child("forward", SpanKind::Client));
            let env = Envelope {
                id: None,
                request: Request::Enumerate {
                    test: test.to_owned(),
                    model: model.to_owned(),
                    budget,
                    engine,
                },
                fwd: true,
                trace: fwd_span.as_ref().map(ActiveSpan::context),
            };
            match cluster.forward(owner, &env) {
                Some(mut response) => {
                    state.telemetry.note_forward(cluster.node_id(owner));
                    state.telemetry.forward_hops.record(1);
                    if let Json::Obj(map) = &mut response {
                        map.insert("forwarded".to_owned(), Json::Bool(true));
                    }
                    if let (Some(mut fs), Some(sink)) = (fwd_span, state.telemetry.span_sink()) {
                        fs.attr("peer", cluster.node_id(owner).to_owned());
                        fs.attr("ok", true);
                        fs.finish(sink);
                    }
                    return Ok(response);
                }
                None => {
                    state
                        .telemetry
                        .forward_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                    if let (Some(mut fs), Some(sink)) = (fwd_span, state.telemetry.span_sink()) {
                        fs.attr("peer", cluster.node_id(owner).to_owned());
                        fs.attr("ok", false);
                        fs.finish(sink);
                    }
                }
            }
        }
    }
    if state.cluster.is_some() && !fwd {
        state.telemetry.forward_hops.record(0);
    }

    let mut work_span = span.map(|s| s.child("enumerate", SpanKind::Internal));
    // Single-flight: one leader per fingerprint enumerates; identical
    // concurrent queries wait for its cache insert and then hit.
    let (value, hit) = loop {
        let flight = {
            let mut flights = state.flights.lock().expect("flights poisoned");
            match flights.get(&fp.raw()) {
                Some(flight) => Some(Arc::clone(flight)),
                None => {
                    flights.insert(fp.raw(), Arc::new(Flight::default()));
                    None
                }
            }
        };
        if let Some(flight) = flight {
            state
                .telemetry
                .singleflight_waits
                .fetch_add(1, Ordering::Relaxed);
            flight.wait();
            // Leader finished: retry. A successful leader filled the
            // cache (hit); a failed one left it empty and this waiter
            // becomes the next leader.
            continue;
        }
        let outcome = match engine {
            EngineSel::Serial => cached_enumerate(
                &state.cache,
                &entry.test.program,
                &policy,
                &config,
                enumerate,
            ),
            EngineSel::Parallel => cached_enumerate(
                &state.cache,
                &entry.test.program,
                &policy,
                &config,
                enumerate_parallel,
            ),
            EngineSel::Pruned => cached_enumerate(
                &state.cache,
                &entry.test.program,
                &policy,
                &config,
                enumerate_pruned,
            ),
        };
        let flight = state
            .flights
            .lock()
            .expect("flights poisoned")
            .remove(&fp.raw());
        if let Some(flight) = flight {
            flight.finish();
        }
        break outcome.map_err(enum_error)?;
    };
    if !hit {
        state.telemetry.fold_stats(&value.stats);
    }
    // A cache hit never records its work span: it would time nothing
    // but the cache probe, and the server span's `outcome` attribute
    // already says "hit". Dropping it keeps warm traced traffic cheap
    // and keeps trace logs proportional to work done, not requests
    // served. A fresh run decomposes into the engine's measured phases:
    // the obs timers become synthetic child spans, so a flamegraph
    // attributes the miss cost to closure/settle/resolve work.
    if !hit {
        if let Some(ws) = &mut work_span {
            ws.attr("engine", engine.name());
            ws.attr("explored", value.stats.explored as u64);
            ws.attr("forks", value.stats.forks as u64);
            ws.attr("deduped", value.stats.deduped as u64);
        }
        if let (Some(ws), Some(sink)) = (work_span, state.telemetry.span_sink()) {
            if let Some(obs) = &value.stats.obs {
                for (name, nanos, count_key, count) in [
                    (
                        "phase:closure",
                        obs.closure_nanos,
                        "rounds",
                        obs.closure_rounds,
                    ),
                    (
                        "phase:settle",
                        obs.settle_nanos,
                        "calls",
                        obs.candidate_calls,
                    ),
                    (
                        "phase:resolve",
                        obs.resolve_nanos,
                        "stores",
                        obs.candidate_stores,
                    ),
                ] {
                    if nanos > 0 || count > 0 {
                        sink.record_span(ws.synthetic_child(
                            name,
                            nanos,
                            vec![(count_key, count.into())],
                        ));
                    }
                }
            }
            ws.finish(sink);
        }
    }
    // The outcomes/stats fragments are fingerprint-invariant and
    // dominate the response; render them once per key and splice the
    // memoized strings on subsequent hits.
    let fragments = {
        let mut rendered = state.rendered.lock().expect("rendered poisoned");
        match rendered.get(&fp.raw()) {
            Some(found) => found.clone(),
            None => {
                if rendered.len() >= RENDERED_CAP {
                    rendered.clear();
                }
                let fresh = RenderedResult {
                    outcomes: outcomes_json(&value.outcomes).to_string(),
                    stats: value.stats.to_json(),
                    outcome_count: value.outcomes.len(),
                    executions: value.distinct_executions(),
                };
                rendered.insert(fp.raw(), fresh.clone());
                fresh
            }
        }
    };
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("kind", Json::str("enumerate")),
        ("test", Json::str(entry.test.name.clone())),
        ("model", Json::str(sel.name())),
        ("engine", Json::str(engine.name())),
        ("cache_hit", Json::Bool(hit)),
        ("outcome_count", Json::num(fragments.outcome_count as f64)),
        ("executions", Json::num(fragments.executions as f64)),
        ("outcomes", Json::Raw(fragments.outcomes)),
        ("stats", Json::Raw(fragments.stats)),
    ];
    if let Some(cluster) = &state.cluster {
        fields.push(("node", Json::str(cluster.self_id())));
    }
    Ok(Json::obj(fields))
}

fn report_json(report: &EntryReport) -> Json {
    let rows = report
        .rows
        .iter()
        .map(|row| {
            Json::obj([
                ("model", Json::str(row.model.name())),
                ("condition", Json::str(row.condition.clone())),
                ("expected_allowed", Json::Bool(row.expected_allowed)),
                ("observed_allowed", Json::Bool(row.observed_allowed)),
                ("pass", Json::Bool(row.pass())),
                ("outcomes", Json::num(row.outcomes as f64)),
                ("executions", Json::num(row.executions as f64)),
                ("certified", Json::Bool(row.certified)),
                ("cache_hit", Json::Bool(row.cache_hit)),
            ])
        })
        .collect();
    Json::obj([
        ("name", Json::str(report.name.clone())),
        ("all_pass", Json::Bool(report.all_pass())),
        ("rows", Json::Arr(rows)),
    ])
}

fn verdict_response(
    state: &ServerState,
    test: &str,
    budget: Option<u64>,
    engine: EngineSel,
) -> Result<Json, ServiceError> {
    let entry = find_entry(test)?;
    let config = state.config(budget);
    let report = match engine {
        EngineSel::Serial => run_entry_cached(entry, &config, &state.cache),
        EngineSel::Parallel => run_entry_cached_parallel(entry, &config, &state.cache),
        EngineSel::Pruned => run_entry_cached_pruned(entry, &config, &state.cache),
    }
    .map_err(enum_error)?;
    for row in report.rows.iter().filter(|row| !row.cache_hit) {
        state.telemetry.fold_stats(&row.stats);
    }
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("kind", Json::str("verdict")),
        ("report", report_json(&report)),
    ]))
}

fn witness_response(
    state: &ServerState,
    test: &str,
    model: &str,
    condition: usize,
    budget: Option<u64>,
) -> Result<Json, ServiceError> {
    let entry = find_entry(test)?;
    let policy = find_model(model)?.policy();
    let (goal, text) = condition_goal(entry, condition)?;
    let config = state.config(budget);
    let witness = find_witness(&entry.test.program, &policy, &config, &goal).map_err(enum_error)?;
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("kind", Json::str("witness")),
        ("condition", Json::str(text)),
        ("found", Json::Bool(witness.is_some())),
        (
            "witness",
            witness.map_or(Json::Null, |w| Json::Raw(w.to_json())),
        ),
    ]))
}

fn refutation_response(
    state: &ServerState,
    test: &str,
    model: &str,
    condition: usize,
    budget: Option<u64>,
) -> Result<Json, ServiceError> {
    let entry = find_entry(test)?;
    let policy = find_model(model)?.policy();
    let (goal, text) = condition_goal(entry, condition)?;
    let config = state.config(budget);
    let outcome = refute(&entry.test.program, &policy, &config, &goal).map_err(enum_error)?;
    let (refuted, proof, witness) = match outcome {
        RefuteOutcome::Observable(w) => (false, Json::Null, Json::Raw(w.to_json())),
        RefuteOutcome::Refuted(Refutation::Blocked(b)) => (
            true,
            Json::obj([
                ("kind", Json::str("blocked")),
                ("blocked", Json::Raw(b.to_json())),
            ]),
            Json::Null,
        ),
        RefuteOutcome::Refuted(Refutation::Exhaustive { explored, distinct }) => (
            true,
            Json::obj([
                ("kind", Json::str("exhaustive")),
                ("explored", Json::num(explored as f64)),
                ("distinct", Json::num(distinct as f64)),
            ]),
            Json::Null,
        ),
    };
    Ok(Json::obj([
        ("ok", Json::Bool(true)),
        ("kind", Json::str("refutation")),
        ("condition", Json::str(text)),
        ("refuted", Json::Bool(refuted)),
        ("proof", proof),
        ("witness", witness),
    ]))
}

fn certify_response(
    state: &ServerState,
    test: &str,
    model: &str,
    robust: bool,
) -> Result<Json, ServiceError> {
    let entry = find_entry(test)?;
    let policy = find_model(model)?.policy();
    let certificate = samm_analyze::certify(&entry.test.program, &policy);
    let checked = certificate
        .as_ref()
        .is_some_and(|c| c.check(&entry.test.program, &policy));
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("kind", Json::str("certify")),
        ("certified", Json::Bool(certificate.is_some())),
        ("checked", Json::Bool(checked)),
    ];
    if robust {
        let verdict = samm_analyze::analyze_static(&entry.test.program, &policy);
        state.telemetry.record_robust_verdict(verdict.name());
        // Evidence self-checks: a robustness certificate or critical
        // cycle must revalidate before the client is told about it.
        let robust_checked = match &verdict {
            StaticVerdict::Robust(cert) => cert.check(&entry.test.program, &policy),
            StaticVerdict::CycleFound(cycle) => cycle.check(&entry.test.program, &policy),
            StaticVerdict::Unknown(_) => true,
        };
        fields.push(("robust", Json::str(verdict.name())));
        fields.push(("robust_checked", Json::Bool(robust_checked)));
        match &verdict {
            StaticVerdict::CycleFound(cycle) => {
                fields.push(("cycle", Json::str(cycle.to_string())));
            }
            StaticVerdict::Unknown(reason) => {
                fields.push(("reason", Json::str(reason.to_string())));
            }
            StaticVerdict::Robust(_) => {}
        }
    }
    Ok(Json::obj(fields))
}

fn metrics_response(state: &ServerState) -> Json {
    let counters = &state.counters;
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("kind", Json::str("metrics")),
        (
            "requests",
            Json::num(counters.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "monitoring",
            Json::num(counters.monitoring.load(Ordering::Relaxed) as f64),
        ),
        (
            "errors",
            Json::num(counters.errors.load(Ordering::Relaxed) as f64),
        ),
        (
            "overloaded",
            Json::num(counters.overloaded.load(Ordering::Relaxed) as f64),
        ),
        ("cache", Json::Raw(state.cache.stats().to_json())),
        ("telemetry", state.telemetry.to_json()),
    ];
    if let Some(cluster) = &state.cluster {
        let snapshot = cluster.snapshot();
        let nodes = snapshot
            .nodes
            .iter()
            .map(|(id, alive)| {
                Json::obj([("id", Json::str(id.clone())), ("alive", Json::Bool(*alive))])
            })
            .collect();
        fields.push((
            "cluster",
            Json::obj([
                ("self", Json::str(snapshot.self_id)),
                ("nodes", Json::Arr(nodes)),
                (
                    "forwards",
                    Json::num(state.telemetry.forwards_ok.load(Ordering::Relaxed) as f64),
                ),
                (
                    "fallbacks",
                    Json::num(state.telemetry.forward_fallbacks.load(Ordering::Relaxed) as f64),
                ),
                (
                    "singleflight_waits",
                    Json::num(state.telemetry.singleflight_waits.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ));
    }
    Json::obj(fields)
}

/// This node's per-kind merged latency snapshots, in wire form.
fn local_kind_snapshots(telemetry: &Telemetry) -> Json {
    Json::obj(
        KIND_NAMES
            .iter()
            .zip(&telemetry.kinds)
            .map(|(name, k)| (*name, snapshot_to_json(&k.merged())))
            .collect::<Vec<_>>(),
    )
}

/// This node's sample of the fleet view.
fn local_node_sample(state: &ServerState) -> Json {
    let node = state.cluster.as_ref().map_or("local", |c| c.self_id());
    Json::obj([
        ("node", Json::str(node)),
        ("up", Json::Bool(true)),
        (
            "requests",
            Json::num(state.telemetry.requests_total() as f64),
        ),
        ("kinds", local_kind_snapshots(&state.telemetry)),
    ])
}

/// A snapshot plus derived quantiles, for the `fleet` section.
fn fleet_kind_json(snap: &HistogramSnapshot) -> Json {
    let ms = 1e-6; // ns -> ms
    let mut rendered = snapshot_to_json(snap);
    if let Json::Obj(map) = &mut rendered {
        map.insert(
            "p50_ms".to_owned(),
            Json::num(snap.quantile(0.50) as f64 * ms),
        );
        map.insert(
            "p99_ms".to_owned(),
            Json::num(snap.quantile(0.99) as f64 * ms),
        );
    }
    rendered
}

/// Answers `metrics_cluster`: this node's per-kind histogram snapshots
/// plus — on the aggregator (`fwd` false) — the same snapshots fanned
/// out from every ring peer, merged into one `fleet` section. The
/// histogram merge is exact and commutative, so the fleet histogram
/// equals the sum of the per-node snapshots it includes; a peer that
/// does not answer appears with `up:false` and contributes nothing.
/// The fan-out also refreshes the cached fleet view behind the
/// `node`-labelled Prometheus families.
fn metrics_cluster_response(state: &ServerState, fwd: bool) -> Json {
    let mut nodes: Vec<Json> = vec![local_node_sample(state)];
    if !fwd {
        if let Some(cluster) = &state.cluster {
            for i in 0..cluster.len() {
                let peer = cluster.node_id(i);
                if peer == cluster.self_id() {
                    continue;
                }
                let env = Envelope {
                    id: None,
                    request: Request::MetricsCluster,
                    fwd: true,
                    trace: None,
                };
                let answered = cluster.forward(i, &env).and_then(|resp| {
                    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                        return None;
                    }
                    resp.get("nodes")
                        .and_then(Json::as_arr)
                        .and_then(|a| a.first().cloned())
                });
                nodes.push(answered.unwrap_or_else(|| {
                    Json::obj([
                        ("node", Json::str(peer)),
                        ("up", Json::Bool(false)),
                        ("requests", Json::num(0.0)),
                    ])
                }));
            }
        }
    }
    // Fleet merge: bucket-wise addition per kind over answering nodes.
    let mut fleet_requests = 0u64;
    let mut merged: Vec<HistogramSnapshot> = (0..KIND_NAMES.len())
        .map(|_| HistogramSnapshot::default())
        .collect();
    for node in &nodes {
        fleet_requests += node.get("requests").and_then(Json::as_u64).unwrap_or(0);
        if let Some(kinds) = node.get("kinds") {
            for (i, name) in KIND_NAMES.iter().enumerate() {
                if let Some(snap) = kinds.get(name).and_then(snapshot_from_json) {
                    merged[i].merge(&snap);
                }
            }
        }
    }
    if !fwd {
        state
            .telemetry
            .update_fleet(nodes.iter().filter_map(|node| {
                Some((
                    node.get("node")?.as_str()?.to_owned(),
                    FleetSample {
                        up: node.get("up").and_then(Json::as_bool).unwrap_or(false),
                        requests: node.get("requests").and_then(Json::as_u64).unwrap_or(0),
                    },
                ))
            }));
    }
    let fleet_kinds = Json::obj(
        KIND_NAMES
            .iter()
            .zip(&merged)
            .map(|(name, snap)| (*name, fleet_kind_json(snap)))
            .collect::<Vec<_>>(),
    );
    Json::obj([
        ("ok", Json::Bool(true)),
        ("kind", Json::str("metrics_cluster")),
        (
            "node",
            Json::str(state.cluster.as_ref().map_or("local", |c| c.self_id())),
        ),
        ("nodes", Json::Arr(nodes)),
        (
            "fleet",
            Json::obj([
                ("requests", Json::num(fleet_requests as f64)),
                ("kinds", fleet_kinds),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServerState {
        ServerState::new(EnumCache::new(64), None)
    }

    #[test]
    fn enumerate_hits_cache_on_replay() {
        let state = state();
        let req = Request::Enumerate {
            test: "SB".into(),
            model: "TSO".into(),
            budget: None,
            engine: EngineSel::Serial,
        };
        let cold = handle(&state, &req);
        assert_eq!(cold.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(cold.get("cache_hit").and_then(Json::as_bool), Some(false));
        // The replay — even on the other engine — is a cache hit with
        // the identical outcome set.
        let warm = handle(
            &state,
            &Request::Enumerate {
                test: "sb".into(),
                model: "tso".into(),
                budget: None,
                engine: EngineSel::Parallel,
            },
        );
        assert_eq!(warm.get("cache_hit").and_then(Json::as_bool), Some(true));
        assert_eq!(cold.get("outcomes"), warm.get("outcomes"));
        assert_eq!(cold.get("outcome_count"), warm.get("outcome_count"));
    }

    #[test]
    fn unknown_names_are_classified() {
        let state = state();
        let err = handle(
            &state,
            &Request::Enumerate {
                test: "NoSuchTest".into(),
                model: "TSO".into(),
                budget: None,
                engine: EngineSel::Serial,
            },
        );
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unknown-test")
        );
        let err = handle(
            &state,
            &Request::Certify {
                test: "SB".into(),
                model: "NoSuchModel".into(),
                robust: false,
            },
        );
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unknown-model")
        );
        assert_eq!(state.counters.errors.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn overbudget_is_a_structured_error() {
        let state = state();
        let err = handle(
            &state,
            &Request::Enumerate {
                test: "IRIW".into(),
                model: "Weak".into(),
                budget: Some(3),
                engine: EngineSel::Serial,
            },
        );
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overbudget")
        );
        // Errors are never cached: a retry with enough budget succeeds.
        let ok = handle(
            &state,
            &Request::Enumerate {
                test: "IRIW".into(),
                model: "Weak".into(),
                budget: None,
                engine: EngineSel::Serial,
            },
        );
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn verdict_report_passes() {
        let state = state();
        let resp = handle(
            &state,
            &Request::Verdict {
                test: "SB".into(),
                budget: None,
                engine: EngineSel::Serial,
            },
        );
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        let report = resp.get("report").unwrap();
        assert_eq!(report.get("all_pass").and_then(Json::as_bool), Some(true));
        assert_eq!(
            report.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(6)
        );
    }

    #[test]
    fn witness_and_refutation_agree_with_verdicts() {
        let state = state();
        // SB 0/0 is observable under TSO…
        let w = handle(
            &state,
            &Request::Witness {
                test: "SB".into(),
                model: "TSO".into(),
                condition: 0,
                budget: None,
            },
        );
        assert_eq!(w.get("found").and_then(Json::as_bool), Some(true));
        assert!(w.get("witness").is_some_and(|j| *j != Json::Null));
        // …and refuted under SC.
        let r = handle(
            &state,
            &Request::Refutation {
                test: "SB".into(),
                model: "SC".into(),
                condition: 0,
                budget: None,
            },
        );
        assert_eq!(r.get("refuted").and_then(Json::as_bool), Some(true));
        assert!(r.get("proof").is_some_and(|j| *j != Json::Null));
        // Both responses are valid JSON end to end (the Raw splices
        // parse back).
        crate::json::parse(&w.to_string()).unwrap();
        crate::json::parse(&r.to_string()).unwrap();
    }

    #[test]
    fn certify_finds_drf_programs() {
        let state = state();
        let resp = handle(
            &state,
            &Request::Certify {
                test: "MP+fences".into(),
                model: "TSO".into(),
                robust: false,
            },
        );
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        if resp.get("certified") == Some(&Json::Bool(true)) {
            assert_eq!(resp.get("checked").and_then(Json::as_bool), Some(true));
        }
        // Without robust:true the response carries no robustness fields
        // and the verdict counters stay untouched.
        assert!(resp.get("robust").is_none());
        assert!(state
            .telemetry
            .robust_verdicts
            .iter()
            .all(|v| v.load(Ordering::Relaxed) == 0));
    }

    #[test]
    fn certify_reports_robustness_verdicts_and_counts_them() {
        let state = state();
        // The racy-but-fenced scratch entry: uncertified by DRF/TLO,
        // robust by delay-set analysis.
        let resp = handle(
            &state,
            &Request::Certify {
                test: "MP+fences+scratch".into(),
                model: "Weak".into(),
                robust: true,
            },
        );
        assert_eq!(resp.get("certified").and_then(Json::as_bool), Some(false));
        assert_eq!(resp.get("robust").and_then(Json::as_str), Some("robust"));
        assert_eq!(
            resp.get("robust_checked").and_then(Json::as_bool),
            Some(true)
        );
        // Unfenced SB under the weak model: a critical cycle, rendered.
        let resp = handle(
            &state,
            &Request::Certify {
                test: "SB".into(),
                model: "Weak".into(),
                robust: true,
            },
        );
        assert_eq!(resp.get("robust").and_then(Json::as_str), Some("cycle"));
        assert_eq!(
            resp.get("robust_checked").and_then(Json::as_bool),
            Some(true)
        );
        assert!(resp
            .get("cycle")
            .and_then(Json::as_str)
            .is_some_and(|c| c.contains("delayable")));
        // fig8 loads through published pointers: the analysis declines
        // soundly with a reason.
        let resp = handle(
            &state,
            &Request::Certify {
                test: "fig8".into(),
                model: "Weak".into(),
                robust: true,
            },
        );
        assert_eq!(resp.get("robust").and_then(Json::as_str), Some("unknown"));
        assert!(resp.get("reason").and_then(Json::as_str).is_some());
        // One verdict of each class reached the telemetry counters.
        let counts: Vec<u64> = state
            .telemetry
            .robust_verdicts
            .iter()
            .map(|v| v.load(Ordering::Relaxed))
            .collect();
        assert_eq!(counts, vec![1, 1, 1]);
        // The whole response set stays well-formed JSON.
        crate::json::parse(&resp.to_string()).unwrap();
    }

    #[test]
    fn metrics_reports_counters_and_cache() {
        let state = state();
        handle(
            &state,
            &Request::Enumerate {
                test: "SB".into(),
                model: "SC".into(),
                budget: None,
                engine: EngineSel::Serial,
            },
        );
        let m = handle(&state, &Request::Metrics);
        assert_eq!(m.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(m.get("errors").and_then(Json::as_u64), Some(0));
        let parsed = crate::json::parse(&m.to_string()).unwrap();
        assert!(parsed.get("cache").is_some());
        assert!(parsed.get("telemetry").is_some());
    }

    /// Self-monitoring must not skew the service counters: `metrics`
    /// and `metrics_prom` requests are tallied in `monitoring`, never
    /// in `requests`.
    #[test]
    fn monitoring_requests_are_reported_separately() {
        let state = state();
        handle(
            &state,
            &Request::Enumerate {
                test: "SB".into(),
                model: "SC".into(),
                budget: None,
                engine: EngineSel::Serial,
            },
        );
        // A burst of self-monitoring...
        for _ in 0..5 {
            handle(&state, &Request::Metrics);
        }
        handle(&state, &Request::MetricsProm);
        let m = handle(&state, &Request::Metrics);
        // ...leaves `requests` at the one real query.
        assert_eq!(m.get("requests").and_then(Json::as_u64), Some(1));
        // The metrics above plus this one, and the prom scrape.
        assert_eq!(m.get("monitoring").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn requests_get_ids_and_latency_telemetry() {
        let state = state();
        let req = Request::Enumerate {
            test: "SB".into(),
            model: "TSO".into(),
            budget: None,
            engine: EngineSel::Serial,
        };
        // Server-assigned ids are unique; client ids are echoed.
        let first = handle(&state, &req);
        let second = handle(&state, &req);
        let a = first.get("id").and_then(Json::as_str).unwrap();
        let b = second.get("id").and_then(Json::as_str).unwrap();
        assert_ne!(a, b);
        let echoed = handle_traced(&state, &req, Some("client-77"));
        assert_eq!(echoed.get("id").and_then(Json::as_str), Some("client-77"));
        // One miss then two hits, all in the enumerate histograms.
        let k = &state.telemetry.kinds[0];
        assert_eq!(k.miss.count(), 1);
        assert_eq!(k.hit.count(), 2);
        // The fresh run's stats (observe on by default) reached the
        // aggregated obs counters.
        assert!(state.telemetry.obs_agg.snapshot().rule_edges() > 0);
        assert!(state.telemetry.enum_forks.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn overbudget_latency_is_tracked_separately() {
        let state = state();
        handle(
            &state,
            &Request::Enumerate {
                test: "IRIW".into(),
                model: "Weak".into(),
                budget: Some(3),
                engine: EngineSel::Serial,
            },
        );
        let k = &state.telemetry.kinds[0];
        assert_eq!(k.overbudget.count(), 1);
        assert_eq!(k.miss.count(), 0);
        assert_eq!(k.errors.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn metrics_prom_response_is_a_valid_exposition() {
        let state = state();
        handle(
            &state,
            &Request::Enumerate {
                test: "SB".into(),
                model: "TSO".into(),
                budget: None,
                engine: EngineSel::Serial,
            },
        );
        let resp = handle(&state, &Request::MetricsProm);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        let text = resp.get("text").and_then(Json::as_str).unwrap();
        let summary = samm_core::telemetry::prom::check(text).expect("valid exposition");
        assert!(summary.has_family("samm_requests_total"));
        assert!(summary.has_family("samm_request_latency_seconds"));
        assert!(summary.has_family("samm_closure_rule_applications_total"));
        // The response as a whole is still one well-formed JSON line.
        crate::json::parse(&resp.to_string()).unwrap();
    }
}
