//! Distributed-tracing end-to-end: a forwarded cluster request yields
//! ONE trace whose client/server/forward/engine-phase spans link up
//! across node trace logs, malformed `trace` fields degrade to fresh
//! root spans instead of errors, and `metrics_cluster` merges per-node
//! histogram snapshots exactly.

#![cfg(unix)]

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::Duration;

use samm_core::telemetry::trace::TraceContext;
use samm_serve::client::Client;
use samm_serve::cluster::ClusterConfig;
use samm_serve::event_loop::{self, EventConfig, EventHandle};
use samm_serve::json::Json;
use samm_serve::server::ServerConfig;

const TIMEOUT: Duration = Duration::from_secs(20);

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

/// Starts a 3-node cluster with one trace log per node under `dir`;
/// returns the handles and the trace-log paths.
fn start_traced_cluster(dir: &std::path::Path) -> (Vec<EventHandle>, Vec<PathBuf>) {
    std::fs::create_dir_all(dir).unwrap();
    let addrs = free_addrs(3);
    let topology = format!(
        "node-a {}\nnode-b {}\nnode-c {}\n",
        addrs[0], addrs[1], addrs[2]
    );
    let mut handles = Vec::new();
    let mut logs = Vec::new();
    for (id, addr) in ["node-a", "node-b", "node-c"].iter().zip(&addrs) {
        let log = dir.join(format!("{id}.trace.jsonl"));
        let _ = std::fs::remove_file(&log);
        handles.push(
            event_loop::start(
                ServerConfig {
                    addr: addr.to_string(),
                    workers: 2,
                    read_timeout: Duration::from_secs(5),
                    trace_log: Some(log.clone()),
                    ..ServerConfig::default()
                },
                EventConfig {
                    cluster: Some(ClusterConfig::parse(&topology, id).unwrap()),
                    ..EventConfig::default()
                },
            )
            .unwrap(),
        );
        logs.push(log);
    }
    (handles, logs)
}

/// One span row parsed back out of a node's trace log.
#[derive(Debug, Clone)]
struct Row {
    span: String,
    parent: String,
    name: String,
    dur_ns: u64,
    node: Option<String>,
    fwd: bool,
}

/// All spans of `trace_hex` across the given logs, keyed by span id.
fn spans_of_trace(logs: &[PathBuf], trace_hex: &str) -> BTreeMap<String, Row> {
    let mut rows = BTreeMap::new();
    for log in logs {
        let body = std::fs::read_to_string(log).unwrap_or_default();
        for line in body.lines() {
            let value = samm_serve::json::parse(line).unwrap();
            if value.get("trace").and_then(Json::as_str) != Some(trace_hex) {
                continue;
            }
            let field = |k: &str| value.get(k).and_then(Json::as_str).map(str::to_owned);
            let row = Row {
                span: field("span").unwrap(),
                parent: field("parent").unwrap(),
                name: field("name").unwrap(),
                dur_ns: value.get("dur_ns").and_then(Json::as_u64).unwrap(),
                node: field("node"),
                fwd: value.get("fwd").and_then(Json::as_bool) == Some(true),
            };
            rows.insert(row.span.clone(), row);
        }
    }
    rows
}

#[test]
fn forwarded_request_yields_one_linked_trace() {
    let dir = std::env::temp_dir().join(format!("samm-trace-e2e-{}", std::process::id()));
    let (handles, logs) = start_traced_cluster(&dir);
    let mut client = Client::connect(handles[0].addr(), TIMEOUT).unwrap();

    // Client-originated trace context: pretend span 0xc11e... is an
    // in-flight client span; the server must parent under it.
    let ctx = TraceContext {
        trace: 0x00c0_ffee_0000_0001,
        span: 0xc11e_0000_0000_0001,
    };

    // Walk distinct keys until one forwards; a 3-node ring owning all
    // 12 locally is (1/3)^12 ≈ impossible.
    let keys = [
        ("SB", "SC"),
        ("SB", "TSO"),
        ("SB", "Weak"),
        ("MP", "SC"),
        ("MP", "TSO"),
        ("MP", "Weak"),
        ("IRIW", "SC"),
        ("IRIW", "TSO"),
        ("IRIW", "Weak"),
        ("MP+fences", "SC"),
        ("MP+fences", "TSO"),
        ("MP+fences", "Weak"),
    ];
    let mut forwarded_key = None;
    for (test, model) in keys {
        let line = format!(
            r#"{{"kind":"enumerate","test":"{test}","model":"{model}","trace":"{}"}}"#,
            ctx.encode()
        );
        let response = client.request_raw(&line).unwrap();
        assert!(ok(&response), "{test}/{model}: {response}");
        if response.get("forwarded").and_then(Json::as_bool) == Some(true) {
            forwarded_key = Some((test, model));
            break;
        }
    }
    let forwarded_key = forwarded_key.expect("some key must be peer-owned");

    drop(client);
    for handle in handles {
        handle.shutdown().unwrap();
    }

    let trace_hex = format!("{:016x}", ctx.trace);
    let rows = spans_of_trace(&logs, &trace_hex);
    assert!(!rows.is_empty(), "trace logs must carry the trace");

    // The entry span: node-a's server span, parented directly under
    // the client's span id. Every request of the key walk parents
    // there (the test reuses one client context), so pick the entry
    // that proxied — the one with a forward child.
    let client_span_hex = format!("{:016x}", ctx.span);
    let entry = rows
        .values()
        .find(|r| {
            r.name == "server"
                && r.parent == client_span_hex
                && rows
                    .values()
                    .any(|f| f.name == "forward" && f.parent == r.span)
        })
        .unwrap_or_else(|| {
            panic!("no proxying server span under the client span ({forwarded_key:?}): {rows:?}")
        });
    assert_eq!(entry.node.as_deref(), Some("node-a"));
    assert!(!entry.fwd, "the entry span is not a forwarded handler");

    // Its forward child (the proxy hop for the peer-owned key), and
    // under that the owner's server span, marked fwd and on a peer.
    let forward = rows
        .values()
        .find(|r| r.name == "forward" && r.parent == entry.span)
        .unwrap_or_else(|| panic!("no forward span under the entry ({forwarded_key:?}): {rows:?}"));
    let owner = rows
        .values()
        .find(|r| r.name == "server" && r.parent == forward.span)
        .unwrap_or_else(|| panic!("no owner server span under the forward: {rows:?}"));
    assert!(owner.fwd, "the owner handles a fwd envelope");
    assert_ne!(owner.node.as_deref(), Some("node-a"));

    // The owner did the work: an enumerate span, and under it the
    // engine phase spans of the cache miss.
    let work = rows
        .values()
        .find(|r| r.name == "enumerate" && r.parent == owner.span)
        .unwrap_or_else(|| panic!("no enumerate span under the owner: {rows:?}"));
    let phases: Vec<&Row> = rows
        .values()
        .filter(|r| r.name.starts_with("phase:") && r.parent == work.span)
        .collect();
    assert!(
        !phases.is_empty(),
        "a cache miss must attribute engine phases: {rows:?}"
    );

    // Durations nest consistently: each hop encloses the next, and the
    // phases sum to no more than the enumerate span.
    assert!(entry.dur_ns >= forward.dur_ns, "{entry:?} vs {forward:?}");
    assert!(forward.dur_ns >= owner.dur_ns, "{forward:?} vs {owner:?}");
    assert!(owner.dur_ns >= work.dur_ns, "{owner:?} vs {work:?}");
    let phase_sum: u64 = phases.iter().map(|p| p.dur_ns).sum();
    assert!(
        phase_sum <= work.dur_ns,
        "phases ({phase_sum}) exceed the enumerate span ({})",
        work.dur_ns
    );
}

#[test]
fn malformed_trace_fields_degrade_to_fresh_roots() {
    let dir = std::env::temp_dir().join(format!("samm-trace-tamper-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("tamper.trace.jsonl");
    let _ = std::fs::remove_file(&log);
    let handle = event_loop::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            trace_log: Some(log.clone()),
            ..ServerConfig::default()
        },
        EventConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();

    // Every malformed shape a confused (or hostile) client could send:
    // the request must succeed, tracing must fall back to a fresh root.
    for (i, tamper) in [
        r#""garbage""#,
        "12345",
        "true",
        r#""0000000000000000-0000000000000000""#,
        r#""deadbeef""#,
        r#"{"trace":"nested"}"#,
    ]
    .iter()
    .enumerate()
    {
        let line = format!(
            r#"{{"kind":"enumerate","test":"SB","model":"SC","id":"t{i}","trace":{tamper}}}"#
        );
        let response = client.request_raw(&line).unwrap();
        assert!(ok(&response), "tampered trace must not fail: {response}");
        assert_eq!(
            response.get("id").and_then(Json::as_str),
            Some(format!("t{i}").as_str())
        );
    }

    drop(client);
    handle.shutdown().unwrap();

    // Each tampered request produced a root server span (parent zero)
    // with a fresh nonzero trace id.
    let body = std::fs::read_to_string(&log).unwrap();
    let mut roots = 0usize;
    for line in body.lines() {
        let value = samm_serve::json::parse(line).unwrap();
        if value.get("name").and_then(Json::as_str) != Some("server") {
            continue;
        }
        assert_eq!(
            value.get("parent").and_then(Json::as_str),
            Some("0000000000000000"),
            "tampered traces must root, not adopt garbage parents: {line}"
        );
        assert_ne!(
            value.get("trace").and_then(Json::as_str),
            Some("0000000000000000"),
            "fresh root traces are nonzero: {line}"
        );
        roots += 1;
    }
    assert_eq!(
        roots, 6,
        "one root server span per tampered request:\n{body}"
    );
}

#[test]
fn metrics_cluster_merges_per_node_snapshots_exactly() {
    let dir = std::env::temp_dir().join(format!("samm-trace-fleet-{}", std::process::id()));
    let (handles, _logs) = start_traced_cluster(&dir);

    // Drive work through every node so all three carry latency
    // histograms of their own.
    for handle in &handles {
        let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
        for (test, model) in [("SB", "SC"), ("MP", "TSO"), ("IRIW", "Weak")] {
            let line = format!(r#"{{"kind":"enumerate","test":"{test}","model":"{model}"}}"#);
            let response = client.request_raw(&line).unwrap();
            assert!(ok(&response), "{response}");
        }
    }

    let mut client = Client::connect(handles[0].addr(), TIMEOUT).unwrap();
    let fleet = client.request_raw(r#"{"kind":"metrics_cluster"}"#).unwrap();
    assert!(ok(&fleet), "{fleet}");
    assert_eq!(
        fleet.get("kind").and_then(Json::as_str),
        Some("metrics_cluster")
    );
    assert_eq!(fleet.get("node").and_then(Json::as_str), Some("node-a"));

    let nodes = fleet.get("nodes").and_then(Json::as_arr).unwrap();
    assert_eq!(nodes.len(), 3, "{fleet}");
    let mut node_requests = 0u64;
    let mut node_enum_counts = 0u64;
    for node in nodes {
        assert_eq!(node.get("up").and_then(Json::as_bool), Some(true), "{node}");
        node_requests += node.get("requests").and_then(Json::as_u64).unwrap();
        if let Some(count) = node
            .get("kinds")
            .and_then(|k| k.get("enumerate"))
            .and_then(|e| e.get("count"))
            .and_then(Json::as_u64)
        {
            node_enum_counts += count;
        }
    }
    assert!(node_requests >= 9, "every node served work: {fleet}");

    // The acceptance criterion: the fleet view IS the sum of the
    // per-node snapshots — requests and histogram counts both.
    let fleet_obj = fleet.get("fleet").unwrap();
    assert_eq!(
        fleet_obj.get("requests").and_then(Json::as_u64),
        Some(node_requests),
        "{fleet}"
    );
    let fleet_enum = fleet_obj
        .get("kinds")
        .and_then(|k| k.get("enumerate"))
        .unwrap();
    assert_eq!(
        fleet_enum.get("count").and_then(Json::as_u64),
        Some(node_enum_counts),
        "{fleet}"
    );
    assert!(
        fleet_enum
            .get("p99_ms")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0,
        "merged quantiles are computable: {fleet}"
    );

    drop(client);
    for handle in handles {
        handle.shutdown().unwrap();
    }
}
