//! End-to-end tests of the litmus-query service over real loopback
//! sockets: every request kind, structured errors for malformed and
//! over-budget requests, queue backpressure, cache persistence across
//! restarts, and graceful drain.

use std::time::Duration;

use samm_serve::client::{Client, ClientError};
use samm_serve::json::Json;
use samm_serve::server::{self, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 8,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_kind(response: &Json) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

#[test]
fn every_request_kind_round_trips() {
    let handle = server::start(test_config()).unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();

    let enumerate = client
        .request_raw(r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#)
        .unwrap();
    assert!(ok(&enumerate), "{enumerate}");
    assert_eq!(
        enumerate.get("cache_hit").and_then(Json::as_bool),
        Some(false)
    );
    assert!(
        enumerate
            .get("outcome_count")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    let verdict = client
        .request_raw(r#"{"kind":"verdict","test":"SB","engine":"parallel"}"#)
        .unwrap();
    assert!(ok(&verdict), "{verdict}");
    let report = verdict.get("report").unwrap();
    assert_eq!(report.get("all_pass").and_then(Json::as_bool), Some(true));
    // The SB/TSO enumeration of the first request answers one of the
    // verdict rows from the cache.
    let rows = report.get("rows").and_then(Json::as_arr).unwrap();
    assert!(rows
        .iter()
        .any(|r| r.get("cache_hit").and_then(Json::as_bool) == Some(true)));

    let witness = client
        .request_raw(r#"{"kind":"witness","test":"SB","model":"TSO","condition":0}"#)
        .unwrap();
    assert!(ok(&witness), "{witness}");
    assert_eq!(witness.get("found").and_then(Json::as_bool), Some(true));

    let refutation = client
        .request_raw(r#"{"kind":"refutation","test":"SB","model":"SC","condition":0}"#)
        .unwrap();
    assert!(ok(&refutation), "{refutation}");
    assert_eq!(
        refutation.get("refuted").and_then(Json::as_bool),
        Some(true)
    );

    let certify = client
        .request_raw(r#"{"kind":"certify","test":"MP+fences","model":"TSO"}"#)
        .unwrap();
    assert!(ok(&certify), "{certify}");

    let metrics = client.request_raw(r#"{"kind":"metrics"}"#).unwrap();
    assert!(ok(&metrics), "{metrics}");
    // The five service requests above — the metrics request itself is
    // monitoring traffic and must not inflate `requests`.
    assert_eq!(metrics.get("requests").and_then(Json::as_u64), Some(5));
    assert_eq!(metrics.get("monitoring").and_then(Json::as_u64), Some(1));
    assert!(metrics.get("cache").is_some());
    assert!(metrics.get("telemetry").is_some());

    handle.shutdown().unwrap();
}

#[test]
fn enumeration_cache_is_shared_across_connections() {
    let handle = server::start(test_config()).unwrap();
    let mut first = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let cold = first
        .request_raw(r#"{"kind":"enumerate","test":"IRIW","model":"Weak"}"#)
        .unwrap();
    assert!(ok(&cold), "{cold}");
    assert_eq!(cold.get("cache_hit").and_then(Json::as_bool), Some(false));
    drop(first);

    let mut second = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let warm = second
        .request_raw(r#"{"kind":"enumerate","test":"IRIW","model":"Weak","engine":"parallel"}"#)
        .unwrap();
    assert!(ok(&warm), "{warm}");
    assert_eq!(warm.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(cold.get("outcomes"), warm.get("outcomes"));
    handle.shutdown().unwrap();
}

#[test]
fn malformed_and_unknown_requests_return_structured_errors() {
    let handle = server::start(test_config()).unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    for (line, kind) in [
        ("this is not json", "malformed"),
        ("[1,2,3]", "malformed"),
        (r#"{"kind":"enumerate","test":"SB"}"#, "malformed"),
        (r#"{"kind":"frobnicate"}"#, "unknown-kind"),
        (
            r#"{"kind":"enumerate","test":"NoSuchTest","model":"TSO"}"#,
            "unknown-test",
        ),
        (
            r#"{"kind":"enumerate","test":"SB","model":"NoSuchModel"}"#,
            "unknown-model",
        ),
        (
            r#"{"kind":"witness","test":"SB","model":"TSO","condition":99}"#,
            "malformed",
        ),
    ] {
        let response = client.request_raw(line).unwrap();
        assert!(!ok(&response), "{line} must fail");
        assert_eq!(error_kind(&response), Some(kind), "{line}");
    }
    // The connection survives every error, and the server still
    // answers well-formed requests on it.
    let response = client
        .request_raw(r#"{"kind":"enumerate","test":"SB","model":"SC"}"#)
        .unwrap();
    assert!(ok(&response), "{response}");
    handle.shutdown().unwrap();
}

#[test]
fn overbudget_requests_fail_structurally_and_do_not_poison_the_cache() {
    let handle = server::start(test_config()).unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let broke = client
        .request_raw(r#"{"kind":"enumerate","test":"IRIW","model":"Weak","budget":2}"#)
        .unwrap();
    assert!(!ok(&broke), "{broke}");
    assert_eq!(error_kind(&broke), Some("overbudget"));
    // The failed attempt must not have cached anything: the retry with
    // headroom runs fresh and succeeds.
    let retry = client
        .request_raw(r#"{"kind":"enumerate","test":"IRIW","model":"Weak"}"#)
        .unwrap();
    assert!(ok(&retry), "{retry}");
    assert_eq!(retry.get("cache_hit").and_then(Json::as_bool), Some(false));
    handle.shutdown().unwrap();
}

#[test]
fn full_queue_rejects_with_retry_hint() {
    let handle = server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .unwrap();

    // Occupy the single worker: a served connection is held by its
    // worker until it closes.
    let mut busy = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let response = busy.request_raw(r#"{"kind":"metrics"}"#).unwrap();
    assert!(ok(&response));

    // Fill the single queue slot.
    let waiting = Client::connect(handle.addr(), TIMEOUT).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // The next connection must be rejected with a structured
    // `overloaded` error carrying a retry hint. The server writes the
    // rejection unsolicited and closes, so only read — a write could
    // fail with a broken pipe before the line is consumed.
    let mut rejected = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let overloaded = rejected.read_response().unwrap();
    assert_eq!(error_kind(&overloaded), Some("overloaded"), "{overloaded}");
    let retry = overloaded
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_u64);
    assert!(retry.is_some(), "{overloaded}");

    // Release the worker; the queued connection gets served.
    drop(busy);
    let mut waiting = waiting;
    let response = waiting.request_raw(r#"{"kind":"metrics"}"#).unwrap();
    assert!(ok(&response), "{response}");
    assert!(response.get("overloaded").and_then(Json::as_u64).unwrap() >= 1);

    handle.shutdown().unwrap();
}

#[test]
fn shutdown_request_drains_gracefully() {
    let handle = server::start(test_config()).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr, TIMEOUT).unwrap();
    let response = client
        .request_raw(r#"{"kind":"enumerate","test":"SB","model":"SC"}"#)
        .unwrap();
    assert!(ok(&response));
    let bye = client.request_raw(r#"{"kind":"shutdown"}"#).unwrap();
    assert!(ok(&bye), "{bye}");
    // join (not shutdown): the drain was initiated by the wire request.
    handle.join().unwrap();
    // The listener is gone: new connections fail or are dropped
    // unanswered.
    match Client::connect(addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut late) => {
            assert!(matches!(
                late.request_raw(r#"{"kind":"metrics"}"#),
                Err(ClientError::Closed) | Err(ClientError::Io(_))
            ));
        }
    }
}

#[test]
fn cache_persists_across_restarts() {
    let dir = std::env::temp_dir().join(format!("samm-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.samm");

    let first = server::start(ServerConfig {
        persist_path: Some(path.clone()),
        ..test_config()
    })
    .unwrap();
    let mut client = Client::connect(first.addr(), TIMEOUT).unwrap();
    let cold = client
        .request_raw(r#"{"kind":"enumerate","test":"MP","model":"TSO"}"#)
        .unwrap();
    assert!(ok(&cold), "{cold}");
    assert_eq!(cold.get("cache_hit").and_then(Json::as_bool), Some(false));
    drop(client);
    first.shutdown().unwrap();
    assert!(path.exists(), "drain must persist the cache");

    let second = server::start(ServerConfig {
        persist_path: Some(path.clone()),
        ..test_config()
    })
    .unwrap();
    let mut client = Client::connect(second.addr(), TIMEOUT).unwrap();
    let warm = client
        .request_raw(r#"{"kind":"enumerate","test":"MP","model":"TSO"}"#)
        .unwrap();
    assert!(ok(&warm), "{warm}");
    assert_eq!(
        warm.get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "restarted server must answer from the persisted cache"
    );
    assert_eq!(cold.get("outcomes"), warm.get("outcomes"));
    drop(client);
    second.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The docs-freshness check: the metric-family table in
/// `docs/SERVICE.md` (one family per row) must list exactly the
/// families a fully-populated exposition emits — no documented ghost
/// families, no undocumented metrics.
#[test]
fn docs_metric_table_matches_the_prom_exposition() {
    use std::collections::BTreeSet;
    use std::sync::atomic::Ordering;

    use samm_core::cache::{CacheStats, ShardStats};
    use samm_core::telemetry::prom;
    use samm_serve::cluster::ClusterSnapshot;
    use samm_serve::telemetry::{ReqOutcome, Telemetry};

    // Populate every conditionally-emitted series: latency samples,
    // batch/forward histograms, a peer forward, an event-loop gauge,
    // shard stats, and a cluster snapshot.
    let telemetry = Telemetry::new(None);
    telemetry.record(0, ReqOutcome::Miss, Duration::from_millis(3));
    telemetry.batch_sizes.record(4);
    telemetry.forward_hops.record(1);
    telemetry.forwards_ok.fetch_add(1, Ordering::Relaxed);
    telemetry.forward_fallbacks.fetch_add(1, Ordering::Relaxed);
    telemetry.singleflight_waits.fetch_add(1, Ordering::Relaxed);
    telemetry.note_forward("node-b");
    telemetry.update_fleet([(
        "node-b".to_owned(),
        samm_serve::telemetry::FleetSample {
            up: true,
            requests: 7,
        },
    )]);
    let _gauges = telemetry.register_loop();
    let shards = vec![ShardStats {
        entries: 1,
        hits: 2,
        misses: 3,
    }];
    let cluster = ClusterSnapshot {
        self_id: "node-a".to_owned(),
        nodes: vec![("node-a".to_owned(), true), ("node-b".to_owned(), false)],
    };
    let text = telemetry.render_prom(1, &CacheStats::default(), &shards, Some(&cluster));
    let summary = prom::check(&text).expect("exposition must validate");
    let exposed: BTreeSet<String> = summary.families.iter().cloned().collect();

    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/SERVICE.md"
    ))
    .expect("docs/SERVICE.md is readable");
    let documented: BTreeSet<String> = doc
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("| `samm_")?;
            Some(format!("samm_{}", rest.split('`').next().unwrap()))
        })
        .collect();
    assert!(
        documented.len() >= 30,
        "the SERVICE.md table should list every family, found {}",
        documented.len()
    );

    let ghosts: Vec<&String> = documented.difference(&exposed).collect();
    assert!(
        ghosts.is_empty(),
        "documented in SERVICE.md but absent from the exposition: {ghosts:?}"
    );
    let undocumented: Vec<&String> = exposed.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "emitted by render_prom but missing from the SERVICE.md table: {undocumented:?}"
    );
}
