//! End-to-end tests of the readiness-driven event core over real
//! loopback sockets: request round trips, pipelining with out-of-order
//! responses matched by id, the `batch` request kind over the wire,
//! graceful drain, cache persistence, and both poller backends.

#![cfg(unix)]

use std::collections::HashMap;
use std::time::Duration;

use samm_serve::client::Client;
use samm_serve::event_loop::{self, EventConfig};
use samm_serve::json::Json;
use samm_serve::server::ServerConfig;
use samm_serve::sys::PollerKind;

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

#[test]
fn every_request_kind_round_trips_on_the_event_core() {
    let handle = event_loop::start(test_config(), EventConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    for line in [
        r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#,
        r#"{"kind":"verdict","test":"SB"}"#,
        r#"{"kind":"witness","test":"SB","model":"TSO","condition":0}"#,
        r#"{"kind":"refutation","test":"SB","model":"SC","condition":0}"#,
        r#"{"kind":"certify","test":"MP+fences","model":"TSO"}"#,
        r#"{"kind":"metrics"}"#,
        r#"{"kind":"metrics_prom"}"#,
    ] {
        let response = client.request_raw(line).unwrap();
        assert!(ok(&response), "{line} -> {response}");
    }
    // Structured errors come back on the same connection, which
    // survives them.
    let bad = client.request_raw("this is not json").unwrap();
    assert!(!ok(&bad));
    let good = client
        .request_raw(r#"{"kind":"enumerate","test":"SB","model":"SC"}"#)
        .unwrap();
    assert!(ok(&good), "{good}");
    handle.shutdown().unwrap();
}

#[test]
fn pipelined_requests_are_answered_out_of_order_by_id() {
    let handle = event_loop::start(test_config(), EventConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();

    // Fire the whole pipeline before reading anything: a heavy cold
    // enumeration first, cheap requests behind it. With two workers the
    // cheap answers may overtake the heavy one — the protocol contract
    // is that responses are matched by id, not by order.
    let requests: Vec<(String, String)> = vec![
        (
            "slow".to_owned(),
            r#"{"kind":"enumerate","test":"IRIW","model":"Weak","id":"slow"}"#.to_owned(),
        ),
        (
            "m1".to_owned(),
            r#"{"kind":"metrics","id":"m1"}"#.to_owned(),
        ),
        (
            "c1".to_owned(),
            r#"{"kind":"certify","test":"SB","model":"TSO","id":"c1"}"#.to_owned(),
        ),
        (
            "m2".to_owned(),
            r#"{"kind":"metrics","id":"m2"}"#.to_owned(),
        ),
    ];
    for (_, line) in &requests {
        client.send_raw(line).unwrap();
    }
    let mut by_id: HashMap<String, Json> = HashMap::new();
    for _ in &requests {
        let response = client.read_response().unwrap();
        let id = response
            .get("id")
            .and_then(Json::as_str)
            .expect("every response carries its id")
            .to_owned();
        by_id.insert(id, response);
    }
    // Every pipelined request was answered exactly once, correctly.
    for (id, _) in &requests {
        let response = by_id.get(id).unwrap_or_else(|| panic!("no response {id}"));
        assert!(ok(response), "{id} -> {response}");
    }
    assert_eq!(
        by_id["slow"].get("kind").and_then(Json::as_str),
        Some("enumerate")
    );
    assert_eq!(
        by_id["c1"].get("kind").and_then(Json::as_str),
        Some("certify")
    );
    handle.shutdown().unwrap();
}

#[test]
fn batch_round_trips_over_the_wire() {
    let handle = event_loop::start(test_config(), EventConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let response = client
        .request_raw(
            r#"{"kind":"batch","requests":[
                {"kind":"enumerate","test":"SB","model":"TSO","id":"b0"},
                {"kind":"enumerate","test":"SB"},
                {"kind":"enumerate","test":"SB","model":"TSO","id":"b2"}
            ]}"#
            .replace('\n', " ")
            .as_str(),
        )
        .unwrap();
    assert!(ok(&response), "{response}");
    assert_eq!(response.get("count").and_then(Json::as_u64), Some(3));
    assert_eq!(response.get("failed").and_then(Json::as_u64), Some(1));
    let responses = response.get("responses").and_then(Json::as_arr).unwrap();
    assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("b0"));
    assert!(ok(&responses[0]));
    assert!(!ok(&responses[1]), "malformed slot fails alone");
    // The duplicate is answered from the cache warmed by slot 0.
    assert_eq!(
        responses[2].get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    handle.shutdown().unwrap();
}

#[test]
fn wire_shutdown_drains_and_persists_the_cache() {
    let dir = std::env::temp_dir().join(format!("samm-event-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.samm");

    let handle = event_loop::start(
        ServerConfig {
            persist_path: Some(path.clone()),
            ..test_config()
        },
        EventConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let cold = client
        .request_raw(r#"{"kind":"enumerate","test":"MP","model":"TSO"}"#)
        .unwrap();
    assert!(ok(&cold), "{cold}");
    let bye = client.request_raw(r#"{"kind":"shutdown"}"#).unwrap();
    assert!(ok(&bye), "{bye}");
    handle.join().unwrap();
    assert!(path.exists(), "drain must persist the cache");

    // A restarted event server answers from the persisted cache.
    let handle = event_loop::start(
        ServerConfig {
            persist_path: Some(path.clone()),
            ..test_config()
        },
        EventConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let warm = client
        .request_raw(r#"{"kind":"enumerate","test":"MP","model":"TSO"}"#)
        .unwrap();
    assert_eq!(warm.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(cold.get("outcomes"), warm.get("outcomes"));
    drop(client);
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poll_backend_and_multiple_loops_serve_correctly() {
    let handle = event_loop::start(
        test_config(),
        EventConfig {
            loops: 2,
            poller: PollerKind::Poll,
            ..EventConfig::default()
        },
    )
    .unwrap();
    // Several connections so both loops own some.
    let mut clients: Vec<Client> = (0..4)
        .map(|_| Client::connect(handle.addr(), TIMEOUT).unwrap())
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let response = client
            .request_raw(r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#)
            .unwrap();
        assert!(ok(&response), "client {i}: {response}");
    }
    // The first answer warmed the shared cache for everyone.
    let warm = clients[3]
        .request_raw(r#"{"kind":"enumerate","test":"SB","model":"TSO"}"#)
        .unwrap();
    assert_eq!(warm.get("cache_hit").and_then(Json::as_bool), Some(true));
    drop(clients);
    handle.shutdown().unwrap();
}

#[test]
fn max_connections_rejects_with_the_overloaded_error() {
    let handle = event_loop::start(
        test_config(),
        EventConfig {
            max_connections: 2,
            ..EventConfig::default()
        },
    )
    .unwrap();
    let mut a = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let mut b = Client::connect(handle.addr(), TIMEOUT).unwrap();
    assert!(ok(&a.request_raw(r#"{"kind":"metrics"}"#).unwrap()));
    assert!(ok(&b.request_raw(r#"{"kind":"metrics"}"#).unwrap()));
    // The third connection is rejected with the structured error.
    let mut rejected = Client::connect(handle.addr(), TIMEOUT).unwrap();
    let overloaded = rejected.read_response().unwrap();
    assert_eq!(
        overloaded
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("overloaded"),
        "{overloaded}"
    );
    // Freeing a slot lets new connections in again.
    drop(a);
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(handle.addr(), TIMEOUT).unwrap();
    assert!(ok(&c.request_raw(r#"{"kind":"metrics"}"#).unwrap()));
    drop(b);
    drop(c);
    handle.shutdown().unwrap();
}
