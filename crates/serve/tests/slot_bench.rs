//! Microbenchmarks for the warm request path — the per-slot pipeline
//! that bounds `batch` throughput (E25): envelope parse, warm handler,
//! response render, and client-side decode, plus the individual pieces
//! that have historically regressed (catalog lookup, `EnumConfig`
//! construction, cache-hit clone, telemetry record).
//!
//! `#[ignore]`d so `cargo test` stays fast; run with
//!
//! ```text
//! cargo test --release -p samm-serve --test slot_bench -- --ignored --nocapture
//! ```
use samm_core::cache::EnumCache;
use samm_serve::handler::{handle_envelope, ServerState};
use samm_serve::protocol::parse_envelope;
use std::time::Instant;

#[test]
#[ignore]
fn slot_cost() {
    let state = ServerState::new(EnumCache::new(1024), None);
    let line = r#"{"kind":"enumerate","test":"IRIW","model":"Weak"}"#;
    let env = parse_envelope(line).unwrap();
    handle_envelope(&state, &env); // warm the cache
    let n = 20000;

    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(parse_envelope(line).unwrap());
    }
    println!(
        "parse_envelope: {:.1}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(handle_envelope(&state, &env));
    }
    println!(
        "handle warm:    {:.1}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let resp = handle_envelope(&state, &env);
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(resp.to_string());
    }
    println!(
        "render ({}B): {:.1}us",
        resp.to_string().len(),
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let rendered = resp.to_string();
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(samm_serve::json::parse(&rendered).unwrap());
    }
    println!(
        "client parse:   {:.1}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}

#[test]
#[ignore]
fn handler_pieces() {
    use samm_litmus::catalog;
    let entry = catalog::all()
        .into_iter()
        .find(|e| e.test.name == "IRIW")
        .unwrap();
    let state = ServerState::new(EnumCache::new(1024), None);
    let env = parse_envelope(r#"{"kind":"enumerate","test":"IRIW","model":"Weak"}"#).unwrap();
    handle_envelope(&state, &env);
    let n = 20000;

    let policy = samm_core::policy::Policy::weak();
    let config = samm_core::enumerate::EnumConfig::default();
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(samm_core::fingerprint::query_fingerprint(
            &entry.test.program,
            &policy,
            &config,
        ));
    }
    println!(
        "fingerprint:  {:.1}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}

#[test]
#[ignore]
fn handler_by_test() {
    let state = ServerState::new(EnumCache::new(1024), None);
    let n = 20000;
    for (name, line) in [
        (
            "SB/SC   ",
            r#"{"kind":"enumerate","test":"SB","model":"SC"}"#,
        ),
        (
            "IRIW/Weak",
            r#"{"kind":"enumerate","test":"IRIW","model":"Weak"}"#,
        ),
        ("metrics ", r#"{"kind":"metrics"}"#),
    ] {
        let env = parse_envelope(line).unwrap();
        handle_envelope(&state, &env);
        let sz = handle_envelope(&state, &env).to_string().len();
        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(handle_envelope(&state, &env));
        }
        println!(
            "{name} ({sz:5}B): {:.1}us",
            t.elapsed().as_secs_f64() * 1e6 / n as f64
        );
    }

    // cache.get clone cost in isolation
    let entry = {
        use samm_litmus::catalog;
        catalog::all()
            .into_iter()
            .find(|e| e.test.name == "IRIW")
            .unwrap()
    };
    let policy = samm_core::policy::Policy::weak();
    let config = samm_core::enumerate::EnumConfig::default();
    let cache = EnumCache::new(64);
    samm_core::cache::cached_enumerate(
        &cache,
        &entry.test.program,
        &policy,
        &config,
        samm_core::enumerate::enumerate,
    )
    .unwrap();
    let fp = samm_core::fingerprint::query_fingerprint(&entry.test.program, &policy, &config);
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(cache.get(fp));
    }
    println!(
        "cache.get clone: {:.1}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}

#[test]
#[ignore]
fn overhead_pieces() {
    use samm_serve::telemetry::ReqOutcome;
    use samm_serve::Json;
    use std::time::Duration;
    let state = ServerState::new(EnumCache::new(1024), None);
    let n = 20000;

    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(state.telemetry.ids.next_id());
    }
    println!(
        "next_id:        {:.2}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let t = Instant::now();
    for _ in 0..n {
        state
            .telemetry
            .record(0, ReqOutcome::Hit, Duration::from_micros(20));
        state.telemetry.note_slow(
            "r1",
            None,
            "enumerate",
            ReqOutcome::Hit,
            Duration::from_micros(20),
        );
    }
    println!(
        "record+slow:    {:.2}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("enumerate")),
            ("test", Json::str("IRIW")),
            ("model", Json::str("Weak")),
            ("engine", Json::str("serial")),
            ("cache_hit", Json::Bool(true)),
            ("outcome_count", Json::num(15.0)),
            ("executions", Json::num(100.0)),
            ("outcomes", Json::Null),
            ("stats", Json::str("x")),
        ]));
    }
    println!(
        "Json::obj x10:  {:.2}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}

#[test]
#[ignore]
fn config_cost() {
    let n = 20000;
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(
            samm_core::enumerate::EnumConfig::builder()
                .keep_executions(false)
                .observe(true)
                .budget(None)
                .build(),
        );
    }
    println!(
        "config build:   {:.2}us",
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}
