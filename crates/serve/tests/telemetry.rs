//! End-to-end telemetry tests over real sockets: a client-sent request
//! id must round-trip into the response, the slow-query JSONL log, and
//! the Prometheus exposition — and the `--prom-addr` plain-HTTP
//! listener must serve a checker-clean exposition.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use samm_core::telemetry::prom;
use samm_serve::client::Client;
use samm_serve::json::Json;
use samm_serve::server::{self, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn scrape(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header/body");
    (head.to_owned(), body.to_owned())
}

#[test]
fn request_ids_round_trip_into_response_slow_log_and_exposition() {
    let dir = std::env::temp_dir().join(format!("samm-telemetry-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let slow_path = dir.join("slow.jsonl");
    let _ = std::fs::remove_file(&slow_path);

    let handle = server::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        read_timeout: Duration::from_secs(5),
        prom_addr: Some("127.0.0.1:0".to_owned()),
        slow_log: Some(slow_path.clone()),
        // Zero threshold: every latency-tracked request is "slow", so
        // the test is deterministic.
        slow_threshold: Duration::ZERO,
        ..ServerConfig::default()
    })
    .unwrap();
    let prom_addr = handle.prom_addr().expect("prom listener bound");
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();

    // A server-assigned id first: the "r<N>" scheme.
    let anonymous = client
        .request_raw(r#"{"kind":"enumerate","test":"MP","model":"SC"}"#)
        .unwrap();
    assert!(ok(&anonymous), "{anonymous}");
    let assigned = anonymous.get("id").and_then(Json::as_str).unwrap();
    assert!(assigned.starts_with('r'), "server id: {assigned}");

    // Then a client-chosen id, echoed verbatim.
    let tagged = client
        .request_raw(r#"{"kind":"enumerate","test":"SB","model":"TSO","id":"client-77"}"#)
        .unwrap();
    assert!(ok(&tagged), "{tagged}");
    assert_eq!(tagged.get("id").and_then(Json::as_str), Some("client-77"));

    // The slow log (threshold zero) carries both requests, ids intact.
    let log = std::fs::read_to_string(&slow_path).unwrap();
    assert!(
        log.lines()
            .any(|l| l.contains(&format!("\"id\":\"{assigned}\""))),
        "slow log must carry the server-assigned id:\n{log}"
    );
    let tagged_line = log
        .lines()
        .find(|l| l.contains("\"id\":\"client-77\""))
        .unwrap_or_else(|| panic!("slow log must carry the client id:\n{log}"));
    assert!(tagged_line.contains("\"kind\":\"enumerate\""));
    assert!(tagged_line.contains("\"outcome\":\"miss\""));

    // The HTTP exposition is checker-clean and names the last slow
    // request — the client-chosen id.
    let (head, body) = scrape(prom_addr, "/metrics");
    assert!(head.contains(" 200 "), "{head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );
    let summary = prom::check(&body).expect("valid exposition");
    assert!(summary.has_family("samm_request_latency_seconds"));
    assert!(summary.has_family("samm_slow_queries_total"));
    assert!(
        body.contains("samm_slow_last_request_info{id=\"client-77\"} 1"),
        "exposition must name the last slow request:\n{body}"
    );
    // Both enumerations ran fresh: the miss histogram counted them.
    assert!(
        body.contains("samm_request_latency_seconds_count{kind=\"enumerate\",outcome=\"miss\"} 2")
    );

    // The wire-level metrics_prom answer carries the same exposition
    // (modulo counters that moved), also checker-clean.
    let wire = client.request_raw(r#"{"kind":"metrics_prom"}"#).unwrap();
    assert!(ok(&wire), "{wire}");
    let text = wire.get("text").and_then(Json::as_str).unwrap();
    let summary = prom::check(text).expect("valid wire exposition");
    assert!(summary.has_family("samm_requests_total"));

    // Unknown paths 404 without killing the listener.
    let (head, _) = scrape(prom_addr, "/nope");
    assert!(head.contains(" 404 "), "{head}");
    let (head, _) = scrape(prom_addr, "/metrics");
    assert!(head.contains(" 200 "), "{head}");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn monitoring_traffic_never_reaches_the_request_histograms() {
    let handle = server::start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
    for _ in 0..5 {
        let metrics = client.request_raw(r#"{"kind":"metrics"}"#).unwrap();
        assert!(ok(&metrics), "{metrics}");
    }
    let metrics = client.request_raw(r#"{"kind":"metrics"}"#).unwrap();
    assert_eq!(metrics.get("requests").and_then(Json::as_u64), Some(0));
    assert_eq!(metrics.get("monitoring").and_then(Json::as_u64), Some(6));
    // No latency-tracked kind saw any traffic.
    let kinds = metrics
        .get("telemetry")
        .and_then(|t| t.get("kinds"))
        .unwrap();
    if let Json::Obj(map) = kinds {
        for (name, k) in map {
            for field in ["hit", "miss", "overbudget", "errors"] {
                assert_eq!(
                    k.get(field).and_then(Json::as_u64),
                    Some(0),
                    "{name}.{field}"
                );
            }
        }
    } else {
        panic!("kinds must be an object");
    }
    handle.shutdown().unwrap();
}
