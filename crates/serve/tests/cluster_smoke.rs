//! Three-node loopback cluster: consistent-hash routing, peer
//! forwarding with the `fwd` loop guard, cross-node cache hits, batch
//! regrouping, and graceful degradation when a member drains.

#![cfg(unix)]

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use samm_serve::client::Client;
use samm_serve::cluster::ClusterConfig;
use samm_serve::event_loop::{self, EventConfig, EventHandle};
use samm_serve::json::Json;
use samm_serve::server::ServerConfig;

const TIMEOUT: Duration = Duration::from_secs(20);

/// Workload spread across enough distinct fingerprints that a 3-node
/// ring owning none of them remotely is (1/3)^12 ≈ impossible.
const KEYS: [(&str, &str); 12] = [
    ("SB", "SC"),
    ("SB", "TSO"),
    ("SB", "Weak"),
    ("MP", "SC"),
    ("MP", "TSO"),
    ("MP", "Weak"),
    ("IRIW", "SC"),
    ("IRIW", "TSO"),
    ("IRIW", "Weak"),
    ("MP+fences", "SC"),
    ("MP+fences", "TSO"),
    ("MP+fences", "Weak"),
];

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn enumerate_line(test: &str, model: &str) -> String {
    format!(r#"{{"kind":"enumerate","test":"{test}","model":"{model}"}}"#)
}

/// Reserves `n` distinct loopback ports by binding and releasing them.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

fn start_cluster() -> (Vec<EventHandle>, String) {
    let addrs = free_addrs(3);
    let topology = format!(
        "node-a {}\nnode-b {}\nnode-c {}\n",
        addrs[0], addrs[1], addrs[2]
    );
    let handles = ["node-a", "node-b", "node-c"]
        .iter()
        .zip(&addrs)
        .map(|(id, addr)| {
            event_loop::start(
                ServerConfig {
                    addr: addr.to_string(),
                    workers: 2,
                    read_timeout: Duration::from_secs(5),
                    ..ServerConfig::default()
                },
                EventConfig {
                    cluster: Some(ClusterConfig::parse(&topology, id).unwrap()),
                    ..EventConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    (handles, topology)
}

#[test]
fn cluster_forwards_to_owners_and_hits_their_caches() {
    let (mut handles, _topology) = start_cluster();
    let mut client = Client::connect(handles[0].addr(), TIMEOUT).unwrap();

    // Pass 1 through node-a: remote-owned keys come back annotated with
    // the owner's node id and the forwarded marker.
    let mut forwarded = 0usize;
    for (test, model) in KEYS {
        let response = client.request_raw(&enumerate_line(test, model)).unwrap();
        assert!(ok(&response), "{test}/{model}: {response}");
        let node = response.get("node").and_then(Json::as_str).unwrap();
        if response.get("forwarded").and_then(Json::as_bool) == Some(true) {
            assert_ne!(node, "node-a", "forwarded answers carry the owner id");
            forwarded += 1;
        } else {
            assert_eq!(node, "node-a");
        }
    }
    assert!(forwarded > 0, "some keys must be owned by peers");

    // Pass 2: the owners cached pass 1, so every forwarded answer is
    // now a cross-node cache hit.
    let mut forwarded_hits = 0usize;
    for (test, model) in KEYS {
        let response = client.request_raw(&enumerate_line(test, model)).unwrap();
        assert!(ok(&response), "{test}/{model}: {response}");
        if response.get("forwarded").and_then(Json::as_bool) == Some(true) {
            assert_eq!(
                response.get("cache_hit").and_then(Json::as_bool),
                Some(true),
                "replay must hit the owner's cache: {response}"
            );
            forwarded_hits += 1;
        }
    }
    assert!(forwarded_hits > 0, "peer-forward hit rate must be > 0");

    // A batch through node-a regroups peer-owned slots into forwarded
    // sub-batches and splices the answers back in slot order.
    let subs: Vec<String> = KEYS
        .iter()
        .enumerate()
        .map(|(i, (test, model))| {
            format!(r#"{{"kind":"enumerate","test":"{test}","model":"{model}","id":"k{i}"}}"#)
        })
        .collect();
    let line = format!(r#"{{"kind":"batch","requests":[{}]}}"#, subs.join(","));
    let response = client.request_raw(&line).unwrap();
    assert!(ok(&response), "{response}");
    assert_eq!(
        response.get("count").and_then(Json::as_u64),
        Some(KEYS.len() as u64)
    );
    assert_eq!(response.get("failed").and_then(Json::as_u64), Some(0));
    let responses = response.get("responses").and_then(Json::as_arr).unwrap();
    let mut batch_forwarded = 0usize;
    for (i, slot) in responses.iter().enumerate() {
        assert_eq!(
            slot.get("id").and_then(Json::as_str),
            Some(format!("k{i}").as_str()),
            "slot order preserved"
        );
        assert!(ok(slot), "slot {i}: {slot}");
        if slot.get("forwarded").and_then(Json::as_bool) == Some(true) {
            batch_forwarded += 1;
        }
    }
    assert!(batch_forwarded > 0, "batch must forward peer-owned slots");

    // Drain node-c; keys it owned degrade to fallback (local compute or
    // the ring successor) — never to errors.
    handles.remove(2).shutdown().unwrap();
    for (test, model) in KEYS {
        let response = client.request_raw(&enumerate_line(test, model)).unwrap();
        assert!(
            ok(&response),
            "{test}/{model} must survive a drained member: {response}"
        );
    }

    drop(client);
    for handle in handles {
        handle.shutdown().unwrap();
    }
}
