//! Throughput of the MSI directory simulator plus the Store Atomicity
//! trace checker (paper sections 4.2 and 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_coherence::{check_trace, CoherentSystem, SystemConfig};
use samm_litmus::catalog;

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence/run");
    for entry in [catalog::mp(), catalog::sb(), catalog::iriw_fenced()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.test.name.clone()),
            &entry,
            |b, entry| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let run = CoherentSystem::new(
                        &entry.test.program,
                        SystemConfig {
                            seed,
                            ..SystemConfig::default()
                        },
                    )
                    .run()
                    .expect("protocol completes");
                    std::hint::black_box(run.stats.messages)
                });
            },
        );
    }
    group.finish();
}

fn bench_trace_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence/check");
    for entry in [catalog::mp(), catalog::iriw_fenced()] {
        let run = CoherentSystem::new(&entry.test.program, SystemConfig::default())
            .run()
            .expect("protocol completes");
        let program = entry.test.program.clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(entry.test.name.clone()),
            &run.trace,
            |b, trace| {
                b.iter(|| {
                    let report = check_trace(trace, |a| program.initial_value(a));
                    assert!(report.consistent);
                    std::hint::black_box(report.atomicity_edges)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_runs, bench_trace_checking);
criterion_main!(benches);
