//! One benchmark per paper figure: full behaviour enumeration under the
//! figure's headline model. Regenerating a figure = enumerating its
//! program and checking its verdicts, so this measures the cost of the
//! reproduction itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_litmus::{catalog, ModelSel};

fn config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    let cases: Vec<(samm_litmus::CatalogEntry, ModelSel)> = vec![
        (catalog::fig3(), ModelSel::Weak),
        (catalog::fig4(), ModelSel::Weak),
        (catalog::fig5(), ModelSel::Weak),
        (catalog::fig7(), ModelSel::Weak),
        (catalog::fig8(), ModelSel::Weak),
        (catalog::fig8(), ModelSel::WeakSpec),
        (catalog::fig10(), ModelSel::Tso),
        (catalog::fig10(), ModelSel::Weak),
        (catalog::fig10(), ModelSel::NaiveTso),
    ];
    for (entry, model) in cases {
        let policy = model.policy();
        let cfg = config();
        group.bench_with_input(
            BenchmarkId::new(entry.test.name.clone(), model.name()),
            &entry,
            |b, entry| {
                b.iter(|| {
                    let r = enumerate(&entry.test.program, &policy, &cfg).expect("enumerates");
                    std::hint::black_box(r.outcomes.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_verdict_matrix(c: &mut Criterion) {
    // The full conformance run over all paper figures — the end-to-end
    // reproduction cost.
    let figures = catalog::paper_figures();
    let cfg = config();
    c.bench_function("figures/full_verdict_matrix", |b| {
        b.iter(|| {
            let mut passes = 0usize;
            for entry in &figures {
                let report = samm_litmus::expect::run_entry(entry, &cfg).expect("runs");
                passes += report.rows.iter().filter(|r| r.pass()).count();
            }
            std::hint::black_box(passes)
        });
    });
}

criterion_group!(benches, bench_figures, bench_verdict_matrix);
criterion_main!(benches);
