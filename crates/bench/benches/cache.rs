//! The content-addressed enumeration cache: fingerprint cost, hit/miss
//! latency, and the end-to-end effect of a warm cache on the harness.
//!
//! `cache/fingerprint` measures the pure hashing cost of keying a query
//! (program + policy + config). `cache/hit` replays an enumerate query
//! against a warm cache — the steady state of `samm-serve` — and
//! `cache/miss_fresh` is the same query enumerated fresh, so the pair
//! bounds the speedup a hit buys. `cache/harness_warm` runs the full
//! conformance harness on a warm cache versus `cache/harness_cold`
//! filling it from scratch.

use criterion::{criterion_group, criterion_main, Criterion};

use samm_core::cache::{cached_enumerate, EnumCache};
use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::fingerprint::query_fingerprint;
use samm_core::policy::Policy;
use samm_litmus::catalog;
use samm_litmus::expect::run_entry_cached;

fn config() -> EnumConfig {
    EnumConfig::builder().keep_executions(false).build()
}

fn bench_fingerprint(c: &mut Criterion) {
    let entry = catalog::iriw();
    let policy = Policy::weak();
    let cfg = config();
    c.bench_function("cache/fingerprint", |b| {
        b.iter(|| std::hint::black_box(query_fingerprint(&entry.test.program, &policy, &cfg)));
    });
}

fn bench_hit_vs_miss(c: &mut Criterion) {
    let entry = catalog::iriw();
    let policy = Policy::weak();
    let cfg = config();

    let cache = EnumCache::new(64);
    let (_, hit) = cached_enumerate(&cache, &entry.test.program, &policy, &cfg, enumerate)
        .expect("enumerates");
    assert!(!hit, "first fill must miss");

    c.bench_function("cache/hit", |b| {
        b.iter(|| {
            let (value, hit) =
                cached_enumerate(&cache, &entry.test.program, &policy, &cfg, enumerate)
                    .expect("enumerates");
            assert!(hit);
            std::hint::black_box(value.outcomes.len())
        });
    });
    c.bench_function("cache/miss_fresh", |b| {
        b.iter(|| {
            let r = enumerate(&entry.test.program, &policy, &cfg).expect("enumerates");
            std::hint::black_box(r.outcomes.len())
        });
    });
}

fn bench_harness(c: &mut Criterion) {
    let entry = catalog::iriw();
    let cfg = config();

    let mut group = c.benchmark_group("cache/harness");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cache = EnumCache::new(64);
            let report = run_entry_cached(&entry, &cfg, &cache).expect("runs");
            std::hint::black_box(report.rows.len())
        });
    });
    let warm = EnumCache::new(64);
    run_entry_cached(&entry, &cfg, &warm).expect("fills");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let report = run_entry_cached(&entry, &cfg, &warm).expect("runs");
            assert!(report.rows.iter().all(|r| r.cache_hit));
            std::hint::black_box(report.rows.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fingerprint, bench_hit_vs_miss, bench_harness);
criterion_main!(benches);
