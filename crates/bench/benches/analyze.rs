//! The DRF-SC short-circuit payoff: running a fenced catalog entry
//! through the full model chain with the static certifier (one SC
//! enumeration + four static checks) versus honest per-model
//! enumeration, plus the raw cost of the static passes themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_analyze::{certify, find_races, harness};
use samm_core::enumerate::EnumConfig;
use samm_core::policy::Policy;
use samm_litmus::{catalog, expect, CatalogEntry};

fn fast_config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

fn fenced_entries() -> Vec<CatalogEntry> {
    vec![
        catalog::sb_fenced(),
        catalog::mp_fenced(),
        catalog::iriw_fenced(),
        catalog::wrc_fenced(),
    ]
}

/// Full-enumeration harness vs the certified short-circuit, per entry.
/// The certified runs enumerate once (SC) and answer every other model
/// statically, so the gap widens with chain length and program size.
fn bench_certified_skip(c: &mut Criterion) {
    let config = fast_config();
    let mut group = c.benchmark_group("analyze/harness");
    for entry in fenced_entries() {
        group.bench_with_input(
            BenchmarkId::new("full-enumeration", &entry.test.name),
            &entry,
            |b, entry| {
                b.iter(|| {
                    std::hint::black_box(
                        expect::run_entry(entry, &config).expect("enumeration succeeds"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("certified-skip", &entry.test.name),
            &entry,
            |b, entry| {
                b.iter(|| {
                    std::hint::black_box(
                        harness::run_entry(entry, &config).expect("enumeration succeeds"),
                    )
                });
            },
        );
    }
    group.finish();
}

/// The static passes in isolation: what a certificate or race report
/// costs without any enumeration at all.
fn bench_static_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze/static");
    let weak = Policy::weak();
    for entry in fenced_entries() {
        group.bench_with_input(
            BenchmarkId::new("certify", &entry.test.name),
            &entry,
            |b, entry| {
                b.iter(|| std::hint::black_box(certify(&entry.test.program, &weak)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("find_races", &entry.test.name),
            &entry,
            |b, entry| {
                b.iter(|| std::hint::black_box(find_races(&entry.test.program, &weak)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_certified_skip, bench_static_passes);
criterion_main!(benches);
