//! E23: prune-before-expand vs the serial oracle on fresh enumeration.
//!
//! Benchmarks the catalog mix the `samm-serve` cold path pays for —
//! fresh `keep_executions(false)` queries — under three engines: the
//! serial oracle, the prune-before-expand engine, and (for the IRIW
//! headline number) the E20 configuration both EXPERIMENTS.md tables
//! quote. The pruned engine's win comes from killing claims on the
//! dedup fingerprint *before* paying for a fork, plus flat-arena
//! copy-on-write forks; `samm-prunecheck` gates the same measurement in
//! CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::pruned::enumerate_pruned;
use samm_litmus::{catalog, CatalogEntry, ModelSel};

fn fresh_config() -> EnumConfig {
    EnumConfig::builder().keep_executions(false).build()
}

/// The catalog mix: the heavier classic tests plus the paper figures —
/// the entries whose fresh enumerations dominate a cold catalog sweep.
fn mix() -> Vec<(CatalogEntry, ModelSel)> {
    vec![
        (catalog::sb(), ModelSel::Weak),
        (catalog::mp(), ModelSel::Weak),
        (catalog::iriw(), ModelSel::Weak),
        (catalog::wrc(), ModelSel::Weak),
        (catalog::fig5(), ModelSel::Weak),
        (catalog::fig10(), ModelSel::Pso),
        (catalog::fig10(), ModelSel::Weak),
    ]
}

fn bench_pruned_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruned");
    group.sample_size(30);
    let config = fresh_config();
    for (entry, model) in mix() {
        let policy = model.policy();
        let serial_label = format!("{}/{}/serial", entry.test.name, model.name());
        group.bench_with_input(
            BenchmarkId::from_parameter(serial_label),
            &entry,
            |b, entry| {
                b.iter(|| {
                    let r = enumerate(&entry.test.program, &policy, &config).expect("enumerates");
                    std::hint::black_box((r.outcomes.len(), r.stats.distinct_executions))
                });
            },
        );
        let pruned_label = format!("{}/{}/pruned", entry.test.name, model.name());
        group.bench_with_input(
            BenchmarkId::from_parameter(pruned_label),
            &entry,
            |b, entry| {
                b.iter(|| {
                    let r = enumerate_pruned(&entry.test.program, &policy, &config)
                        .expect("enumerates");
                    std::hint::black_box((r.outcomes.len(), r.stats.distinct_executions))
                });
            },
        );
    }
    group.finish();
}

/// The E20 headline pair: fresh IRIW under Weak, the configuration whose
/// 763 µs baseline EXPERIMENTS.md E20 documents and whose pruned
/// replacement E23 tables.
fn bench_e20_headline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruned-e20");
    group.sample_size(50);
    let entry = catalog::iriw();
    let policy = ModelSel::Weak.policy();
    let config = fresh_config();
    group.bench_function("iriw-weak-serial", |b| {
        b.iter(|| {
            let r = enumerate(&entry.test.program, &policy, &config).expect("enumerates");
            std::hint::black_box(r.stats.distinct_executions)
        });
    });
    group.bench_function("iriw-weak-pruned", |b| {
        b.iter(|| {
            let r = enumerate_pruned(&entry.test.program, &policy, &config).expect("enumerates");
            std::hint::black_box(r.stats.distinct_executions)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pruned_vs_serial, bench_e20_headline);
criterion_main!(benches);
