//! Telemetry primitive cost (experiment E22): the histogram's hot-path
//! `record`, snapshot merging, and an A/B of the serve-side telemetry
//! wrapper on the enumerate path — `handle_traced` with live histograms
//! versus the bare handler work. The bar mirrors E19's: per-request
//! telemetry cost must be noise against real enumeration work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::cache::EnumCache;
use samm_core::telemetry::Histogram;
use samm_serve::handler::{self, ServerState};
use samm_serve::protocol::{EngineSel, Request};
use samm_serve::telemetry::Telemetry;

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/histogram");

    // Hot path: one relaxed add per counter plus the bucket index math.
    group.bench_function("record", |b| {
        let histogram = Histogram::new();
        let mut value = 1u64;
        b.iter(|| {
            // An LCG walk over 6 decades so branch prediction cannot
            // memorise one bucket.
            value = value
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            histogram.record(std::hint::black_box(value >> 24));
        });
    });

    for shards in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("merge", shards), &shards, |b, &shards| {
            let snaps: Vec<_> = (0..shards)
                .map(|shard| {
                    let h = Histogram::new();
                    let mut value = shard as u64 | 1;
                    for _ in 0..10_000 {
                        value = value
                            .wrapping_mul(2862933555777941757)
                            .wrapping_add(3037000493);
                        h.record(value >> 24);
                    }
                    h.snapshot()
                })
                .collect();
            b.iter(|| {
                let mut merged = snaps[0].clone();
                for snap in &snaps[1..] {
                    merged.merge(snap);
                }
                std::hint::black_box(merged.quantile(0.99))
            });
        });
    }
    group.finish();
}

/// The A/B that matters for the service: a fresh enumerate request
/// through `handle_traced` (full telemetry: id, histograms, slow-path
/// check, obs folding) versus through a state whose request never
/// reaches the latency-tracked path. Cache capacity 0 would poison the
/// comparison, so both sides use a fresh cache per iteration — each
/// request is a cold miss doing real enumeration work.
fn bench_request_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/enumerate");
    group.sample_size(20);
    let request = Request::Enumerate {
        test: "IRIW".into(),
        model: "Weak".into(),
        budget: None,
        engine: EngineSel::Serial,
    };
    for (label, observe) in [("observed", true), ("disabled", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &observe,
            |b, &observe| {
                b.iter(|| {
                    let state = ServerState::with_telemetry(
                        EnumCache::new(64),
                        None,
                        Telemetry::default(),
                        observe,
                    );
                    let response = handler::handle_traced(&state, &request, Some("bench"));
                    std::hint::black_box(response)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_histogram, bench_request_overhead);
criterion_main!(benches);
