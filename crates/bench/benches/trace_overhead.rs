//! Tracing overhead guard (experiment E26): the raw cost of recording
//! one finished span into the lock-free ring, and an A/B of the warm
//! batch path — the E25 throughput configuration — with span tracing
//! disabled versus enabled. The bar: disabled must be noise against
//! PR 8's warm numbers (no sink, no span is even allocated), enabled
//! must stay within 5% of disabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::cache::EnumCache;
use samm_core::telemetry::trace::{ActiveSpan, SpanKind, SpanSink, TraceRing};
use samm_serve::handler::{self, ServerState};
use samm_serve::protocol::parse_envelope;
use samm_serve::telemetry::Telemetry;

fn bench_span_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/span");

    // Allocate + finish one attributed span into the ring: the full
    // per-span cost a server request pays when tracing is on.
    group.bench_function("record", |b| {
        let ring = TraceRing::new(4096);
        b.iter(|| {
            let mut span = ActiveSpan::root("server", SpanKind::Server);
            span.attr("req", "enumerate");
            span.attr("outcome", "hit");
            span.finish(std::hint::black_box(&ring) as &dyn SpanSink);
        });
    });

    // A child span continuing an existing context — what forwards and
    // engine phases cost on top of the root.
    group.bench_function("child", |b| {
        let ring = TraceRing::new(4096);
        let parent = ActiveSpan::root("server", SpanKind::Server);
        b.iter(|| {
            let mut span = parent.child("enumerate", SpanKind::Internal);
            span.attr("cache_hit", true);
            span.finish(std::hint::black_box(&ring) as &dyn SpanSink);
        });
    });
    group.finish();
}

/// The warm batch path A/B: one 8-slot batch of cache-hit enumerates
/// through the full handler, with tracing off (no sink installed — the
/// span branch short-circuits) versus on (ring sink; a server span per
/// slot plus one per batch, children for the batch fan-in).
fn bench_warm_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/warm_batch");
    let sub = r#"{"kind":"enumerate","test":"IRIW","model":"Weak"}"#;
    let line = format!(
        "{{\"kind\":\"batch\",\"requests\":[{}]}}",
        [sub; 8].join(",")
    );
    let env = parse_envelope(&line).unwrap();
    for traced in [false, true] {
        let label = if traced { "enabled" } else { "disabled" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &traced, |b, &traced| {
            let mut telemetry = Telemetry::default();
            if traced {
                telemetry.spans = Some(Box::new(TraceRing::new(4096)));
            }
            let state = ServerState::with_telemetry(EnumCache::new(64), None, telemetry, true);
            handler::handle_envelope(&state, &env); // warm the cache
            b.iter(|| std::hint::black_box(handler::handle_envelope(&state, &env)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_span_record, bench_warm_batch);
criterion_main!(benches);
