//! Baseline comparison: the graph-based enumeration of the paper versus
//! plain explicit-state operational enumeration, for the models where both
//! exist (SC and TSO). The graph framework's advantage is *compression* —
//! one partially-ordered execution stands for many interleavings — so its
//! explored-state counts (and often its wall-clock) sit far below the
//! interleaving machines on load-light programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::policy::Policy;
use samm_litmus::catalog;
use samm_oper::{enumerate_sc, enumerate_tso};

fn config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

fn bench_sc_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("oper/sc");
    group.sample_size(20);
    for entry in [
        catalog::sb(),
        catalog::mp(),
        catalog::iriw(),
        catalog::fig5(),
    ] {
        group.bench_with_input(
            BenchmarkId::new("graph", entry.test.name.clone()),
            &entry,
            |b, entry| {
                b.iter(|| {
                    let r = enumerate(
                        &entry.test.program,
                        &Policy::sequential_consistency(),
                        &config(),
                    )
                    .expect("enumerates");
                    std::hint::black_box(r.outcomes.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("interleaving", entry.test.name.clone()),
            &entry,
            |b, entry| {
                b.iter(|| {
                    let o = enumerate_sc(&entry.test.program, 10_000_000).expect("enumerates");
                    std::hint::black_box(o.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_tso_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("oper/tso");
    group.sample_size(20);
    for entry in [catalog::sb(), catalog::fig10()] {
        group.bench_with_input(
            BenchmarkId::new("graph", entry.test.name.clone()),
            &entry,
            |b, entry| {
                b.iter(|| {
                    let r = enumerate(&entry.test.program, &Policy::tso(), &config())
                        .expect("enumerates");
                    std::hint::black_box(r.outcomes.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("store-buffer", entry.test.name.clone()),
            &entry,
            |b, entry| {
                b.iter(|| {
                    let o = enumerate_tso(&entry.test.program, 10_000_000).expect("enumerates");
                    std::hint::black_box(o.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sc_comparison, bench_tso_comparison);
criterion_main!(benches);
