//! The delay-set robustness payoff: answering a racy-but-fenced query
//! with the static certifier (one SC enumeration + a static cycle
//! search) versus a fresh pruned weak-model enumeration, plus the raw
//! cost of the analysis passes themselves (EXPERIMENTS.md table E24).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_analyze::harness;
use samm_analyze::robust::{analyze_robustness, analyze_static, break_cycles};
use samm_core::enumerate::EnumConfig;
use samm_core::pruned::enumerate_pruned;
use samm_litmus::{catalog, expect, CatalogEntry};

fn fast_config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

/// The E24 subject: racy on the flag pair, fenced, plus Bypass scratch
/// traffic — uncertifiable by DRF/TLO, robust by delay-set analysis.
fn subject() -> CatalogEntry {
    catalog::mp_fenced_scratch()
}

/// The headline E24 comparison on one weak model: a fresh pruned
/// enumeration under Weak versus the certified path (static robustness
/// verdict + one pruned SC run that any weak-model query then reuses).
fn bench_certified_vs_fresh(c: &mut Criterion) {
    let config = fast_config();
    let entry = subject();
    let program = &entry.test.program;
    let weak = catalog::ModelSel::Weak.policy();
    let sc = catalog::ModelSel::Sc.policy();
    let mut group = c.benchmark_group("robustness/query");
    group.bench_function(BenchmarkId::new("fresh-pruned", "Weak"), |b| {
        b.iter(|| {
            std::hint::black_box(
                enumerate_pruned(program, &weak, &config).expect("enumeration succeeds"),
            )
        });
    });
    group.bench_function(BenchmarkId::new("robust-certified-cold", "Weak"), |b| {
        // Cold path: the first certified query pays one SC enumeration
        // on top of the static verdict.
        b.iter(|| {
            let verdict = analyze_static(program, &weak);
            let sc_run = enumerate_pruned(program, &sc, &config).expect("enumeration succeeds");
            std::hint::black_box((verdict, sc_run))
        });
    });
    let sc_run = enumerate_pruned(program, &sc, &config).expect("enumeration succeeds");
    group.bench_function(BenchmarkId::new("robust-certified-cached", "Weak"), |b| {
        // Steady state: the SC behaviour set is already cached (the
        // serve cache is content-addressed, and the harness shares one
        // SC run across all certified models), so a weak-model query
        // costs only the static verdict.
        b.iter(|| {
            let verdict = analyze_static(program, &weak);
            std::hint::black_box((verdict, &sc_run.outcomes))
        });
    });
    group.finish();
}

/// The whole-entry harness comparison: full per-model enumeration
/// versus the two-layer certified harness (DRF/TLO first, then
/// delay-set robustness) over every model of the entry.
fn bench_harness_short_circuit(c: &mut Criterion) {
    let config = fast_config();
    let entry = subject();
    let mut group = c.benchmark_group("robustness/harness");
    group.bench_function("full-enumeration", |b| {
        b.iter(|| {
            std::hint::black_box(expect::run_entry(&entry, &config).expect("enumeration succeeds"))
        });
    });
    group.bench_function("certified", |b| {
        b.iter(|| {
            std::hint::black_box(harness::run_entry(&entry, &config).expect("enumeration succeeds"))
        });
    });
    group.finish();
}

/// Raw static passes: the cycle search on robust and non-robust
/// programs, the dynamic cycle confirmation, and the fence search.
fn bench_static_passes(c: &mut Criterion) {
    let config = fast_config();
    let weak = catalog::ModelSel::Weak.policy();
    let mut group = c.benchmark_group("robustness/static");
    for entry in [subject(), catalog::sb(), catalog::iriw()] {
        group.bench_with_input(
            BenchmarkId::new("analyze-static", &entry.test.name),
            &entry,
            |b, entry| {
                b.iter(|| std::hint::black_box(analyze_static(&entry.test.program, &weak)));
            },
        );
    }
    let sb = catalog::sb();
    group.bench_function("confirm-cycle/SB", |b| {
        b.iter(|| {
            std::hint::black_box(
                analyze_robustness(&sb.test.program, &weak, &config).expect("enumeration succeeds"),
            )
        });
    });
    group.bench_function("break-cycles/SB", |b| {
        b.iter(|| std::hint::black_box(break_cycles(&sb.test.program, &weak)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_certified_vs_fresh,
    bench_harness_short_circuit,
    bench_static_passes
);
criterion_main!(benches);
