//! Ablation: Load-Store-graph deduplication (paper section 4.1, "we
//! discard duplicate behaviors from B at each Load Resolution step to
//! avoid wasting effort"). Enumeration with dedup disabled explores the
//! same outcome set through many redundant resolution orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_litmus::{catalog, ModelSel};

fn bench_dedup_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup");
    group.sample_size(10);
    let cases = [
        (catalog::sb(), ModelSel::Weak),
        (catalog::mp(), ModelSel::Weak),
        (catalog::fig5(), ModelSel::Weak),
        (catalog::fig10(), ModelSel::Tso),
    ];
    for (entry, model) in cases {
        let policy = model.policy();
        for dedup in [true, false] {
            let cfg = EnumConfig {
                dedup,
                keep_executions: false,
                ..EnumConfig::default()
            };
            let label = format!(
                "{}/{}/{}",
                entry.test.name,
                model.name(),
                if dedup { "dedup" } else { "no-dedup" }
            );
            group.bench_with_input(BenchmarkId::from_parameter(label), &entry, |b, entry| {
                b.iter(|| {
                    let r = enumerate(&entry.test.program, &policy, &cfg).expect("enumerates");
                    std::hint::black_box((r.outcomes.len(), r.stats.explored))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dedup_ablation);
criterion_main!(benches);
