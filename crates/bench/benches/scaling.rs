//! Scaling of the enumeration procedure with thread count and program
//! length — the state-explosion shape one expects of exhaustive
//! enumeration, with Load-Store-graph deduplication keeping it in check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::policy::Policy;
use samm_litmus::rand_prog::{sb_chain, straightline};

fn config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/threads");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        let prog = sb_chain(n);
        for policy in [Policy::sequential_consistency(), Policy::weak()] {
            group.bench_with_input(
                BenchmarkId::new(policy.name().to_owned(), n),
                &prog,
                |b, prog| {
                    b.iter(|| {
                        let r = enumerate(prog, &policy, &config()).expect("enumerates");
                        std::hint::black_box(r.outcomes.len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_program_length(c: &mut Criterion) {
    // Single-threaded straightline programs isolate graph-construction and
    // closure cost. Note: even a deterministic program's *intermediate*
    // state count grows as 2^k in its k independent unresolved loads (the
    // paper's "Load Resolution is the only place where our enumeration
    // procedure may duplicate effort"), so the sweep stays below ~12
    // loads.
    let mut group = c.benchmark_group("scaling/length");
    group.sample_size(10);
    for len in [8usize, 12, 16, 20, 24] {
        let prog = straightline(len, 4);
        group.bench_with_input(BenchmarkId::new("weak", len), &prog, |b, prog| {
            b.iter(|| {
                let r = enumerate(prog, &Policy::weak(), &config()).expect("enumerates");
                std::hint::black_box(r.stats.max_graph_nodes)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_program_length);
criterion_main!(benches);
