//! Micro-benchmarks of the incremental transitive closure — the data
//! structure every `@`-query and Store Atomicity rule sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

use samm_core::closure::Closure;
use samm_core::ids::NodeId;

fn random_edges(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let a = rng.gen_range(0..n - 1);
            let b = rng.gen_range(a + 1..n);
            (a, b)
        })
        .collect()
}

fn bench_add_edges(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure/add_edges");
    for n in [32usize, 64, 128, 256] {
        let edges = random_edges(n, 3 * n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| {
                let mut c = Closure::new();
                let ids: Vec<NodeId> = (0..n).map(|_| c.add_node()).collect();
                for &(a, bb) in edges {
                    c.add_edge(ids[a], ids[bb]).expect("forward edge");
                }
                std::hint::black_box(c.len())
            });
        });
    }
    group.finish();
}

fn bench_reachability_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure/queries");
    for n in [64usize, 256] {
        let edges = random_edges(n, 3 * n, 7);
        let mut closure = Closure::new();
        let ids: Vec<NodeId> = (0..n).map(|_| closure.add_node()).collect();
        for (a, b) in edges {
            closure.add_edge(ids[a], ids[b]).expect("forward edge");
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &closure, |b, closure| {
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..n {
                    for j in 0..n {
                        if closure.reaches(ids[i], ids[j]) {
                            hits += 1;
                        }
                    }
                }
                std::hint::black_box(hits)
            });
        });
    }
    group.finish();
}

fn bench_chain_worst_case(c: &mut Criterion) {
    // Inserting a chain front-to-back is the worst case for incremental
    // closure maintenance (each edge extends every prefix).
    let mut group = c.benchmark_group("closure/chain");
    for n in [64usize, 256, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut c = Closure::new();
                let ids: Vec<NodeId> = (0..n).map(|_| c.add_node()).collect();
                for w in ids.windows(2) {
                    c.add_edge(w[0], w[1]).expect("chain edge");
                }
                std::hint::black_box(c.reaches(ids[0], ids[n - 1]))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_add_edges,
    bench_reachability_queries,
    bench_chain_worst_case
);
criterion_main!(benches);
