//! Instrumentation overhead (experiment E19): the same enumeration with
//! `EnumConfig::observe` off (every instrumentation site is a null
//! check) versus on (atomic counters + phase timers + closure-rule
//! tallies). The acceptance bar for the observability layer is that the
//! disabled configuration stays within noise of the pre-instrumentation
//! enumerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_litmus::catalog;

fn bench_observe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/enumerate");
    let cases = [catalog::sb(), catalog::iriw(), catalog::fig10()];
    for entry in &cases {
        for observe in [false, true] {
            let config = EnumConfig {
                keep_executions: false,
                observe,
                ..EnumConfig::default()
            };
            let label = format!(
                "{}/{}",
                entry.test.name,
                if observe { "observed" } else { "disabled" }
            );
            group.bench_with_input(BenchmarkId::from_parameter(&label), &config, |b, config| {
                b.iter(|| {
                    let mut total = 0usize;
                    for model in entry.models() {
                        let result = enumerate(&entry.test.program, &model.policy(), config)
                            .expect("enumeration succeeds");
                        total += result.stats.distinct_executions;
                    }
                    std::hint::black_box(total)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_observe_overhead);
criterion_main!(benches);
