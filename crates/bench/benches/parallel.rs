//! Serial vs work-stealing parallel enumeration on frontier-heavy
//! workloads: the largest catalog figures and store-buffering rings.
//!
//! Each group benches the serial engine against [`enumerate_parallel`]
//! at 2, 4 and 8 workers on the same program; equivalence of the two
//! engines is asserted once per program before timing. Speedup requires
//! physical cores — on a single-CPU host the parallel rows measure pure
//! coordination overhead and sit at or below 1x.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::instr::Program;
use samm_core::parallel::enumerate_parallel;
use samm_core::policy::Policy;
use samm_litmus::catalog;
use samm_litmus::rand_prog::sb_chain;

fn config(workers: usize) -> EnumConfig {
    EnumConfig {
        parallelism: workers,
        keep_executions: false,
        ..EnumConfig::default()
    }
}

fn bench_program(c: &mut Criterion, group_name: &str, program: &Program, policy: &Policy) {
    let serial = enumerate(program, policy, &config(1)).expect("serial enumerates");
    let parallel = enumerate_parallel(program, policy, &config(4)).expect("parallel enumerates");
    assert_eq!(
        serial.outcomes, parallel.outcomes,
        "{group_name}: engines must agree"
    );
    assert_eq!(
        serial.stats.distinct_executions,
        parallel.stats.distinct_executions
    );

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("serial", 1), program, |b, prog| {
        b.iter(|| {
            let r = enumerate(prog, policy, &config(1)).expect("enumerates");
            std::hint::black_box(r.outcomes.len())
        });
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", workers), program, |b, prog| {
            b.iter(|| {
                let r = enumerate_parallel(prog, policy, &config(workers)).expect("enumerates");
                std::hint::black_box(r.outcomes.len())
            });
        });
    }
    group.finish();
}

fn bench_sb_chains(c: &mut Criterion) {
    for n in [3usize, 4] {
        bench_program(
            c,
            &format!("parallel/sb_chain_{n}"),
            &sb_chain(n),
            &Policy::weak(),
        );
    }
}

fn bench_catalog_figures(c: &mut Criterion) {
    for entry in [catalog::iriw(), catalog::fig7()] {
        bench_program(
            c,
            &format!("parallel/{}", entry.test.name),
            &entry.test.program,
            &Policy::weak(),
        );
    }
}

criterion_group!(benches, bench_sb_chains, bench_catalog_figures);
criterion_main!(benches);
