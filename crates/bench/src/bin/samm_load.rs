//! `samm-load` — load generator for the `samm-serve` litmus-query
//! service.
//!
//! Replays enumerate queries for a catalog subset against a running
//! server at a configurable concurrency, one pass after another, and
//! reports per-pass throughput, latency percentiles, and cache hit
//! rate. With the default two passes the first is the cold (cache-
//! filling) pass and the second demonstrates the warm hit rate.
//!
//! ```text
//! samm-load [--addr HOST:PORT] [--concurrency N] [--passes N]
//!           [--subset catalog-small|catalog|figures]
//!           [--engine serial|parallel] [--shutdown]
//! ```
//!
//! Exits non-zero when any request failed at the protocol or transport
//! level, so CI can assert a clean run. `--shutdown` sends a
//! `{"kind":"shutdown"}` request after the last pass, draining the
//! server.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use samm_litmus::catalog::{self, CatalogEntry};
use samm_serve::client::Client;
use samm_serve::json::Json;

const TIMEOUT: Duration = Duration::from_secs(30);

struct Options {
    addr: String,
    concurrency: usize,
    passes: usize,
    subset: String,
    engine: String,
    shutdown: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7477".to_owned(),
            concurrency: 8,
            passes: 2,
            subset: "catalog-small".to_owned(),
            engine: "serial".to_owned(),
            shutdown: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: samm-load [--addr HOST:PORT] [--concurrency N] [--passes N]\n\
         \x20                [--subset catalog-small|catalog|figures]\n\
         \x20                [--engine serial|parallel] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("samm-load: {flag} needs an argument");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr"),
            "--concurrency" => {
                opts.concurrency = take("--concurrency").parse().unwrap_or_else(|_| usage())
            }
            "--passes" => opts.passes = take("--passes").parse().unwrap_or_else(|_| usage()),
            "--subset" => opts.subset = take("--subset"),
            "--engine" => opts.engine = take("--engine"),
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("samm-load: unknown argument '{other}'");
                usage();
            }
        }
    }
    opts
}

/// The fast classic tests: every model answers well under a second, so
/// the subset exercises concurrency rather than enumeration depth.
const SMALL: [&str; 10] = [
    "SB",
    "SB+fences",
    "MP",
    "MP+fences",
    "LB",
    "LB+data",
    "CoRR",
    "SB+swap",
    "fig3",
    "fig4",
];

fn subset_entries(subset: &str) -> Vec<CatalogEntry> {
    match subset {
        "catalog" => catalog::all(),
        "figures" => catalog::paper_figures(),
        "catalog-small" => catalog::all()
            .into_iter()
            .filter(|e| SMALL.contains(&e.test.name.as_str()))
            .collect(),
        other => {
            eprintln!("samm-load: unknown subset '{other}'");
            usage();
        }
    }
}

/// The request lines of one pass: every (test, model) pair of the
/// subset.
fn workload(entries: &[CatalogEntry], engine: &str) -> Vec<String> {
    let mut lines = Vec::new();
    for entry in entries {
        for model in entry.models() {
            lines.push(format!(
                "{{\"kind\":\"enumerate\",\"test\":\"{}\",\"model\":\"{}\",\"engine\":\"{engine}\"}}",
                entry.test.name,
                model.name()
            ));
        }
    }
    lines
}

#[derive(Default)]
struct PassTally {
    latencies_ns: Vec<u64>,
    hits: u64,
    errors: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

/// Replays `lines` with `concurrency` connections; every worker owns
/// one connection and pulls the next request index atomically.
fn run_pass(addr: SocketAddr, lines: &[String], concurrency: usize) -> PassTally {
    let next = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(lines.len()));
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| {
                let mut client = match Client::connect(addr, TIMEOUT) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("samm-load: connect failed: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(line) = lines.get(i) else { break };
                    let started = Instant::now();
                    match client.request_raw(line) {
                        Ok(response) => {
                            local.push(started.elapsed().as_nanos() as u64);
                            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                                eprintln!("samm-load: error response: {response}");
                                errors.fetch_add(1, Ordering::Relaxed);
                            } else if response.get("cache_hit").and_then(Json::as_bool)
                                == Some(true)
                            {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("samm-load: transport error: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let mut latencies_ns = latencies.into_inner().unwrap();
    latencies_ns.sort_unstable();
    PassTally {
        latencies_ns,
        hits: hits.into_inner(),
        errors: errors.into_inner(),
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let addr: SocketAddr = match opts.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("samm-load: cannot resolve '{}'", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let entries = subset_entries(&opts.subset);
    let lines = workload(&entries, &opts.engine);
    println!(
        "samm-load: {} requests/pass ({} tests, subset {}), {} pass(es), concurrency {}",
        lines.len(),
        entries.len(),
        opts.subset,
        opts.passes,
        opts.concurrency
    );

    let mut total_errors = 0u64;
    let mut total_hits = 0u64;
    for pass in 1..=opts.passes.max(1) {
        let started = Instant::now();
        let tally = run_pass(addr, &lines, opts.concurrency);
        let wall = started.elapsed();
        let served = tally.latencies_ns.len();
        let hit_rate = if served == 0 {
            0.0
        } else {
            100.0 * tally.hits as f64 / served as f64
        };
        println!(
            "pass {pass}: {served} ok in {:.3}s ({:.1} req/s) hit-rate {hit_rate:.1}% \
             p50 {:.2}ms p90 {:.2}ms p99 {:.2}ms errors {}",
            wall.as_secs_f64(),
            served as f64 / wall.as_secs_f64().max(1e-9),
            percentile(&tally.latencies_ns, 0.50),
            percentile(&tally.latencies_ns, 0.90),
            percentile(&tally.latencies_ns, 0.99),
            tally.errors,
        );
        total_errors += tally.errors;
        total_hits += tally.hits;
    }
    println!("total cache hits: {total_hits}");
    println!("total protocol errors: {total_errors}");

    if opts.shutdown {
        match Client::connect(addr, TIMEOUT)
            .and_then(|mut c| c.request_raw("{\"kind\":\"shutdown\"}"))
        {
            Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                println!("server draining");
            }
            Ok(response) => {
                eprintln!("samm-load: shutdown refused: {response}");
                total_errors += 1;
            }
            Err(e) => {
                eprintln!("samm-load: shutdown failed: {e}");
                total_errors += 1;
            }
        }
    }

    if total_errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
