//! `samm-load` — load generator for the `samm-serve` litmus-query
//! service.
//!
//! Replays enumerate queries for a catalog subset against one or more
//! running servers at a configurable concurrency, one pass after
//! another, and reports per-pass throughput, latency percentiles, and
//! cache hit rate. With the default two passes the first is the cold
//! (cache-filling) pass and the second demonstrates the warm hit rate.
//!
//! Latencies are recorded into the lock-free
//! [`samm_core::telemetry::Histogram`] — the same log-linear structure
//! the server uses — so workers never serialise on a mutex and the
//! reported quantiles carry the histogram's documented ≤ 1/16 relative
//! error instead of the exact-but-contended sorted-vector approach.
//! Success responses are tallied by scanning the raw line rather than
//! parsing it (see [`PassCounters::tally_line`]), so the generator
//! keeps up with a warm batch-mode server on a single core.
//!
//! ```text
//! samm-load [--addr HOST:PORT] [--endpoints A:P,B:P,...]
//!           [--concurrency N] [--passes N] [--batch N]
//!           [--subset catalog-small|catalog|figures]
//!           [--engine serial|parallel] [--prom HOST:PORT]
//!           [--trace PATH] [--bench-json PATH] [--shutdown]
//! ```
//!
//! `--trace PATH` makes the generator originate distributed traces:
//! every wire request carries a fresh `trace` context plus a derived
//! request id, and the matching client-side root span is appended to
//! PATH as JSONL — concatenate it with the servers' `--trace-log`
//! files and the client/server/forward spans of one request share a
//! trace id. `--bench-json PATH` writes a machine-readable run report
//! (per-pass throughput and latency quantiles, plus the fresh-vs-hit
//! microsecond split measured client-side on unbatched runs).
//!
//! `--endpoints` takes a comma-separated list of servers (e.g. the
//! members of a cluster); workers are spread across them round-robin
//! and `--shutdown` drains them all. `--batch N` wraps every N
//! requests in one `{"kind":"batch"}` envelope, so a pass costs
//! `ceil(requests/N)` round trips instead of `requests`; the reported
//! latency quantiles are then per *batch*, while throughput and hit
//! rate still count sub-responses. Responses carrying
//! `"forwarded":true` (answered by a peer on the owner's behalf) are
//! tallied and printed as `forwarded responses: N`.
//!
//! Exits non-zero when any request failed at the protocol or transport
//! level, so CI can assert a clean run. `--prom` scrapes the server's
//! plain-HTTP Prometheus listener after the passes and validates the
//! exposition with [`samm_core::telemetry::prom::check`] — a scrape
//! failure or malformed exposition is also a non-zero exit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use samm_core::telemetry::trace::{ActiveSpan, SpanKind, SpanWriter};
use samm_core::telemetry::{prom, Histogram, HistogramSnapshot, JsonlLog};
use samm_litmus::catalog::{self, CatalogEntry};
use samm_serve::client::Client;
use samm_serve::json::Json;

const TIMEOUT: Duration = Duration::from_secs(30);

struct Options {
    endpoints: Vec<String>,
    concurrency: usize,
    passes: usize,
    batch: usize,
    subset: String,
    engine: String,
    prom: Option<String>,
    trace: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    shutdown: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            endpoints: vec!["127.0.0.1:7477".to_owned()],
            concurrency: 8,
            passes: 2,
            batch: 1,
            subset: "catalog-small".to_owned(),
            engine: "serial".to_owned(),
            prom: None,
            trace: None,
            bench_json: None,
            shutdown: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: samm-load [--addr HOST:PORT] [--endpoints A:P,B:P,...]\n\
         \x20                [--concurrency N] [--passes N] [--batch N]\n\
         \x20                [--subset catalog-small|catalog|figures]\n\
         \x20                [--engine serial|parallel] [--prom HOST:PORT]\n\
         \x20                [--trace PATH] [--bench-json PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("samm-load: {flag} needs an argument");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => opts.endpoints = vec![take("--addr")],
            "--endpoints" => {
                opts.endpoints = take("--endpoints")
                    .split(',')
                    .map(|e| e.trim().to_owned())
                    .filter(|e| !e.is_empty())
                    .collect();
                if opts.endpoints.is_empty() {
                    eprintln!("samm-load: --endpoints needs at least one HOST:PORT");
                    usage();
                }
            }
            "--concurrency" => {
                opts.concurrency = take("--concurrency").parse().unwrap_or_else(|_| usage())
            }
            "--passes" => opts.passes = take("--passes").parse().unwrap_or_else(|_| usage()),
            "--batch" => {
                opts.batch = take("--batch").parse().unwrap_or_else(|_| usage());
                if opts.batch == 0 {
                    eprintln!("samm-load: --batch must be at least 1");
                    usage();
                }
            }
            "--subset" => opts.subset = take("--subset"),
            "--engine" => opts.engine = take("--engine"),
            "--prom" => opts.prom = Some(take("--prom")),
            "--trace" => opts.trace = Some(PathBuf::from(take("--trace"))),
            "--bench-json" => opts.bench_json = Some(PathBuf::from(take("--bench-json"))),
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("samm-load: unknown argument '{other}'");
                usage();
            }
        }
    }
    opts
}

/// The fast classic tests: every model answers well under a second, so
/// the subset exercises concurrency rather than enumeration depth.
const SMALL: [&str; 10] = [
    "SB",
    "SB+fences",
    "MP",
    "MP+fences",
    "LB",
    "LB+data",
    "CoRR",
    "SB+swap",
    "fig3",
    "fig4",
];

fn subset_entries(subset: &str) -> Vec<CatalogEntry> {
    match subset {
        "catalog" => catalog::all(),
        "figures" => catalog::paper_figures(),
        "catalog-small" => catalog::all()
            .into_iter()
            .filter(|e| SMALL.contains(&e.test.name.as_str()))
            .collect(),
        other => {
            eprintln!("samm-load: unknown subset '{other}'");
            usage();
        }
    }
}

/// The request lines of one pass: every (test, model) pair of the
/// subset.
fn workload(entries: &[CatalogEntry], engine: &str) -> Vec<String> {
    let mut lines = Vec::new();
    for entry in entries {
        for model in entry.models() {
            lines.push(format!(
                "{{\"kind\":\"enumerate\",\"test\":\"{}\",\"model\":\"{}\",\"engine\":\"{engine}\"}}",
                entry.test.name,
                model.name()
            ));
        }
    }
    lines
}

struct PassTally {
    latencies: HistogramSnapshot,
    /// Round-trip latencies of responses that missed the cache — only
    /// recorded on unbatched runs, where one line is one request.
    fresh: HistogramSnapshot,
    /// Round-trip latencies of cache-hit responses (unbatched runs).
    hit: HistogramSnapshot,
    served: u64,
    hits: u64,
    forwarded: u64,
    errors: u64,
}

/// A histogram quantile in milliseconds.
fn quantile_ms(snap: &HistogramSnapshot, q: f64) -> f64 {
    snap.quantile(q) as f64 / 1e6
}

/// Shared per-pass counters the worker threads update.
struct PassCounters {
    next: AtomicUsize,
    served: AtomicU64,
    hits: AtomicU64,
    forwarded: AtomicU64,
    errors: AtomicU64,
    latencies: Histogram,
    fresh: Histogram,
    hit: Histogram,
}

impl PassCounters {
    fn new() -> Self {
        PassCounters {
            next: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latencies: Histogram::new(),
            fresh: Histogram::new(),
            hit: Histogram::new(),
        }
    }

    /// Tallies one raw response line without building its value tree.
    ///
    /// On the happy path — every slot a success — the tallied fields
    /// (`ok`, `cache_hit`, `forwarded`) are flat `"name":true` members
    /// that never occur inside the string payloads of a success
    /// response, so substring counting is exact and skips the JSON
    /// parse that would otherwise dominate a warm-cache load run.
    /// Anything that does not look like a clean success (an `ok:false`
    /// anywhere, or a surprising success count) takes the slow path:
    /// a full parse with precise per-slot error reporting.
    ///
    /// `slots` is the batch size, or 0 for a bare (unbatched) request.
    fn tally_line(&self, line: &str, slots: usize) {
        let expected_ok = if slots == 0 { 1 } else { slots + 1 };
        if !line.contains("\"ok\":false") && line.matches("\"ok\":true").count() == expected_ok {
            self.served
                .fetch_add(slots.max(1) as u64, Ordering::Relaxed);
            let hits = line.matches("\"cache_hit\":true").count() as u64;
            self.hits.fetch_add(hits, Ordering::Relaxed);
            let forwarded = line.matches("\"forwarded\":true").count() as u64;
            self.forwarded.fetch_add(forwarded, Ordering::Relaxed);
            return;
        }
        let response = match samm_serve::json::parse(line) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("samm-load: unparseable response: {e}");
                self.errors
                    .fetch_add(slots.max(1) as u64, Ordering::Relaxed);
                return;
            }
        };
        if slots == 0 {
            self.tally_response(&response);
        } else if response.get("ok").and_then(Json::as_bool) == Some(true) {
            let empty = Vec::new();
            let subs = response
                .get("responses")
                .and_then(Json::as_arr)
                .unwrap_or(&empty);
            for slot in subs {
                self.tally_response(slot);
            }
        } else {
            eprintln!("samm-load: batch rejected: {response}");
            self.errors.fetch_add(slots as u64, Ordering::Relaxed);
        }
    }

    /// Tallies one parsed server answer (a top-level response or a
    /// batch slot) — the slow path of [`PassCounters::tally_line`].
    fn tally_response(&self, response: &Json) {
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("samm-load: error response: {response}");
            self.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.served.fetch_add(1, Ordering::Relaxed);
        if response.get("cache_hit").and_then(Json::as_bool) == Some(true) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        if response.get("forwarded").and_then(Json::as_bool) == Some(true) {
            self.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Replays `lines` with `concurrency` connections spread round-robin
/// over `addrs`; every worker owns one connection, pulls the next
/// request index (or batch of indices) atomically, and records its
/// latencies straight into the shared lock-free histogram.
///
/// With `tracer` set, every wire line carries a fresh trace context
/// and a derived request id (`load-<pass>-<index>`), and the matching
/// client root span lands in the tracer's JSONL file — server-side
/// spans for the same request continue that trace.
fn run_pass(
    addrs: &[SocketAddr],
    lines: &[String],
    concurrency: usize,
    batch: usize,
    pass: usize,
    tracer: Option<&SpanWriter>,
) -> PassTally {
    let counters = PassCounters::new();
    std::thread::scope(|scope| {
        for worker in 0..concurrency.max(1) {
            let counters = &counters;
            let addr = addrs[worker % addrs.len()];
            scope.spawn(move || {
                let mut client = match Client::connect(addr, TIMEOUT) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("samm-load: connect {addr}: {e}");
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                loop {
                    let start = counters.next.fetch_add(batch, Ordering::Relaxed);
                    if start >= lines.len() {
                        break;
                    }
                    let chunk = &lines[start..(start + batch).min(lines.len())];
                    let mut line = if batch == 1 {
                        chunk[0].clone()
                    } else {
                        format!("{{\"kind\":\"batch\",\"requests\":[{}]}}", chunk.join(","))
                    };
                    let mut span = tracer.map(|_| {
                        let mut span = ActiveSpan::root("client", SpanKind::Client);
                        span.attr("req", if batch == 1 { "enumerate" } else { "batch" });
                        span.attr("pass", pass as u64);
                        span.attr("slots", chunk.len() as u64);
                        // Every workload line ends in '}', so the id and
                        // trace context splice in without a JSON parse.
                        line = format!(
                            "{},\"id\":\"load-{pass}-{start}\",\"trace\":\"{}\"}}",
                            &line[..line.len() - 1],
                            span.context().encode()
                        );
                        span
                    });
                    let started = Instant::now();
                    match client.request_line(&line) {
                        Ok(response) => {
                            let elapsed = started.elapsed();
                            counters.latencies.record_duration(elapsed);
                            if batch == 1 {
                                if response.contains("\"cache_hit\":true") {
                                    counters.hit.record_duration(elapsed);
                                } else {
                                    counters.fresh.record_duration(elapsed);
                                }
                            }
                            if let (Some(mut span), Some(sink)) = (span.take(), tracer) {
                                span.attr("ok", !response.contains("\"ok\":false"));
                                span.finish(sink);
                            }
                            let slots = if batch == 1 { 0 } else { chunk.len() };
                            counters.tally_line(&response, slots);
                        }
                        Err(e) => {
                            eprintln!("samm-load: transport error: {e}");
                            if let (Some(mut span), Some(sink)) = (span.take(), tracer) {
                                span.attr("ok", false);
                                span.finish(sink);
                            }
                            counters
                                .errors
                                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    PassTally {
        latencies: counters.latencies.snapshot(),
        fresh: counters.fresh.snapshot(),
        hit: counters.hit.snapshot(),
        served: counters.served.into_inner(),
        hits: counters.hits.into_inner(),
        forwarded: counters.forwarded.into_inner(),
        errors: counters.errors.into_inner(),
    }
}

/// Every family a healthy server's exposition must carry after a load
/// run — the counters/histograms `--prom` asserts on.
const REQUIRED_FAMILIES: [&str; 4] = [
    "samm_requests_total",
    "samm_request_latency_seconds",
    "samm_cache_hits_total",
    "samm_closure_rule_applications_total",
];

/// Scrapes `GET /metrics` from the server's plain-HTTP Prometheus
/// listener and validates the body with the text-format checker.
fn scrape_prom(addr: &str) -> Result<(), String> {
    let resolved: SocketAddr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .ok_or_else(|| format!("cannot resolve '{addr}'"))?;
    let mut stream = TcpStream::connect_timeout(&resolved, TIMEOUT)
        .map_err(|e| format!("connect {resolved}: {e}"))?;
    stream
        .set_read_timeout(Some(TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: samm\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "no header/body separator in HTTP response".to_owned())?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("non-200 response: {status}"));
    }
    let summary = prom::check(body).map_err(|e| format!("invalid exposition: {e}"))?;
    for family in REQUIRED_FAMILIES {
        if !summary.has_family(family) {
            return Err(format!("exposition is missing family {family}"));
        }
    }
    println!(
        "prom scrape ok: {} families, {} samples",
        summary.families.len(),
        summary.samples
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut addrs = Vec::new();
    for endpoint in &opts.endpoints {
        match endpoint.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(addr) => addrs.push(addr),
            None => {
                eprintln!("samm-load: cannot resolve '{endpoint}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let entries = subset_entries(&opts.subset);
    let lines = workload(&entries, &opts.engine);
    println!(
        "samm-load: {} requests/pass ({} tests, subset {}), {} pass(es), \
         concurrency {}, batch {}, {} endpoint(s)",
        lines.len(),
        entries.len(),
        opts.subset,
        opts.passes,
        opts.concurrency,
        opts.batch,
        addrs.len(),
    );

    let tracer = match &opts.trace {
        Some(path) => match JsonlLog::open(path, 64 * 1024 * 1024) {
            Ok(log) => Some(SpanWriter::new(Arc::new(log))),
            Err(e) => {
                eprintln!("samm-load: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut total_errors = 0u64;
    let mut total_hits = 0u64;
    let mut total_forwarded = 0u64;
    let mut fresh_total = HistogramSnapshot::default();
    let mut hit_total = HistogramSnapshot::default();
    let mut pass_rows = Vec::new();
    for pass in 1..=opts.passes.max(1) {
        let started = Instant::now();
        let tally = run_pass(
            &addrs,
            &lines,
            opts.concurrency,
            opts.batch,
            pass,
            tracer.as_ref(),
        );
        let wall = started.elapsed();
        let hit_rate = if tally.served == 0 {
            0.0
        } else {
            100.0 * tally.hits as f64 / tally.served as f64
        };
        let unit = if opts.batch == 1 { "req" } else { "batch" };
        println!(
            "pass {pass}: {} ok in {:.3}s ({:.1} req/s) hit-rate {hit_rate:.1}% \
             p50 {:.2}ms p90 {:.2}ms p99 {:.2}ms max {:.2}ms per {unit}, errors {}",
            tally.served,
            wall.as_secs_f64(),
            tally.served as f64 / wall.as_secs_f64().max(1e-9),
            quantile_ms(&tally.latencies, 0.50),
            quantile_ms(&tally.latencies, 0.90),
            quantile_ms(&tally.latencies, 0.99),
            tally.latencies.max as f64 / 1e6,
            tally.errors,
        );
        pass_rows.push(Json::obj([
            ("pass", Json::num(pass as f64)),
            ("ok", Json::num(tally.served as f64)),
            ("errors", Json::num(tally.errors as f64)),
            ("wall_s", Json::num(wall.as_secs_f64())),
            (
                "rps",
                Json::num(tally.served as f64 / wall.as_secs_f64().max(1e-9)),
            ),
            ("hit_rate", Json::num(hit_rate)),
            ("p50_ms", Json::num(quantile_ms(&tally.latencies, 0.50))),
            ("p90_ms", Json::num(quantile_ms(&tally.latencies, 0.90))),
            ("p99_ms", Json::num(quantile_ms(&tally.latencies, 0.99))),
            ("max_ms", Json::num(tally.latencies.max as f64 / 1e6)),
        ]));
        fresh_total.merge(&tally.fresh);
        hit_total.merge(&tally.hit);
        total_errors += tally.errors;
        total_hits += tally.hits;
        total_forwarded += tally.forwarded;
    }
    println!("total cache hits: {total_hits}");
    println!("forwarded responses: {total_forwarded}");
    println!("total protocol errors: {total_errors}");

    if let Some(path) = &opts.bench_json {
        let lat_us = |snap: &HistogramSnapshot| {
            Json::obj([
                ("count", Json::num(snap.count as f64)),
                ("p50_us", Json::num(snap.quantile(0.50) as f64 / 1e3)),
                ("p99_us", Json::num(snap.quantile(0.99) as f64 / 1e3)),
                ("mean_us", Json::num(snap.mean() / 1e3)),
                ("max_us", Json::num(snap.max as f64 / 1e3)),
            ])
        };
        let report = Json::obj([
            ("bench", Json::str("serve")),
            ("subset", Json::str(&opts.subset)),
            ("engine", Json::str(&opts.engine)),
            ("concurrency", Json::num(opts.concurrency as f64)),
            ("batch", Json::num(opts.batch as f64)),
            ("endpoints", Json::num(addrs.len() as f64)),
            ("requests_per_pass", Json::num(lines.len() as f64)),
            (
                "unit",
                Json::str(if opts.batch == 1 { "req" } else { "batch" }),
            ),
            ("passes", Json::Arr(pass_rows)),
            ("fresh_us", lat_us(&fresh_total)),
            ("hit_us", lat_us(&hit_total)),
            ("cache_hits", Json::num(total_hits as f64)),
            ("forwarded", Json::num(total_forwarded as f64)),
            ("errors", Json::num(total_errors as f64)),
        ]);
        match std::fs::write(path, format!("{report}\n")) {
            Ok(()) => println!("bench report written to {}", path.display()),
            Err(e) => {
                eprintln!("samm-load: cannot write {}: {e}", path.display());
                total_errors += 1;
            }
        }
    }

    if let Some(prom_addr) = &opts.prom {
        if let Err(e) = scrape_prom(prom_addr) {
            eprintln!("samm-load: prom scrape failed: {e}");
            total_errors += 1;
        }
    }

    if opts.shutdown {
        for addr in &addrs {
            match Client::connect(*addr, TIMEOUT)
                .and_then(|mut c| c.request_raw("{\"kind\":\"shutdown\"}"))
            {
                Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                    println!("{addr} draining");
                }
                Ok(response) => {
                    eprintln!("samm-load: shutdown refused by {addr}: {response}");
                    total_errors += 1;
                }
                Err(e) => {
                    eprintln!("samm-load: shutdown of {addr} failed: {e}");
                    total_errors += 1;
                }
            }
        }
    }

    if total_errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
