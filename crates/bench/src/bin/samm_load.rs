//! `samm-load` — load generator for the `samm-serve` litmus-query
//! service.
//!
//! Replays enumerate queries for a catalog subset against a running
//! server at a configurable concurrency, one pass after another, and
//! reports per-pass throughput, latency percentiles, and cache hit
//! rate. With the default two passes the first is the cold (cache-
//! filling) pass and the second demonstrates the warm hit rate.
//!
//! Latencies are recorded into the lock-free
//! [`samm_core::telemetry::Histogram`] — the same log-linear structure
//! the server uses — so workers never serialise on a mutex and the
//! reported quantiles carry the histogram's documented ≤ 1/16 relative
//! error instead of the exact-but-contended sorted-vector approach.
//!
//! ```text
//! samm-load [--addr HOST:PORT] [--concurrency N] [--passes N]
//!           [--subset catalog-small|catalog|figures]
//!           [--engine serial|parallel] [--prom HOST:PORT] [--shutdown]
//! ```
//!
//! Exits non-zero when any request failed at the protocol or transport
//! level, so CI can assert a clean run. `--prom` scrapes the server's
//! plain-HTTP Prometheus listener after the passes and validates the
//! exposition with [`samm_core::telemetry::prom::check`] — a scrape
//! failure or malformed exposition is also a non-zero exit.
//! `--shutdown` sends a `{"kind":"shutdown"}` request after the last
//! pass, draining the server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use samm_core::telemetry::{prom, Histogram, HistogramSnapshot};
use samm_litmus::catalog::{self, CatalogEntry};
use samm_serve::client::Client;
use samm_serve::json::Json;

const TIMEOUT: Duration = Duration::from_secs(30);

struct Options {
    addr: String,
    concurrency: usize,
    passes: usize,
    subset: String,
    engine: String,
    prom: Option<String>,
    shutdown: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7477".to_owned(),
            concurrency: 8,
            passes: 2,
            subset: "catalog-small".to_owned(),
            engine: "serial".to_owned(),
            prom: None,
            shutdown: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: samm-load [--addr HOST:PORT] [--concurrency N] [--passes N]\n\
         \x20                [--subset catalog-small|catalog|figures]\n\
         \x20                [--engine serial|parallel] [--prom HOST:PORT] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("samm-load: {flag} needs an argument");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr"),
            "--concurrency" => {
                opts.concurrency = take("--concurrency").parse().unwrap_or_else(|_| usage())
            }
            "--passes" => opts.passes = take("--passes").parse().unwrap_or_else(|_| usage()),
            "--subset" => opts.subset = take("--subset"),
            "--engine" => opts.engine = take("--engine"),
            "--prom" => opts.prom = Some(take("--prom")),
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("samm-load: unknown argument '{other}'");
                usage();
            }
        }
    }
    opts
}

/// The fast classic tests: every model answers well under a second, so
/// the subset exercises concurrency rather than enumeration depth.
const SMALL: [&str; 10] = [
    "SB",
    "SB+fences",
    "MP",
    "MP+fences",
    "LB",
    "LB+data",
    "CoRR",
    "SB+swap",
    "fig3",
    "fig4",
];

fn subset_entries(subset: &str) -> Vec<CatalogEntry> {
    match subset {
        "catalog" => catalog::all(),
        "figures" => catalog::paper_figures(),
        "catalog-small" => catalog::all()
            .into_iter()
            .filter(|e| SMALL.contains(&e.test.name.as_str()))
            .collect(),
        other => {
            eprintln!("samm-load: unknown subset '{other}'");
            usage();
        }
    }
}

/// The request lines of one pass: every (test, model) pair of the
/// subset.
fn workload(entries: &[CatalogEntry], engine: &str) -> Vec<String> {
    let mut lines = Vec::new();
    for entry in entries {
        for model in entry.models() {
            lines.push(format!(
                "{{\"kind\":\"enumerate\",\"test\":\"{}\",\"model\":\"{}\",\"engine\":\"{engine}\"}}",
                entry.test.name,
                model.name()
            ));
        }
    }
    lines
}

struct PassTally {
    latencies: HistogramSnapshot,
    hits: u64,
    errors: u64,
}

/// A histogram quantile in milliseconds.
fn quantile_ms(snap: &HistogramSnapshot, q: f64) -> f64 {
    snap.quantile(q) as f64 / 1e6
}

/// Replays `lines` with `concurrency` connections; every worker owns
/// one connection, pulls the next request index atomically, and records
/// its latencies straight into the shared lock-free histogram.
fn run_pass(addr: SocketAddr, lines: &[String], concurrency: usize) -> PassTally {
    let next = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies = Histogram::new();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| {
                let mut client = match Client::connect(addr, TIMEOUT) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("samm-load: connect failed: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(line) = lines.get(i) else { break };
                    let started = Instant::now();
                    match client.request_raw(line) {
                        Ok(response) => {
                            latencies.record_duration(started.elapsed());
                            if response.get("ok").and_then(Json::as_bool) != Some(true) {
                                eprintln!("samm-load: error response: {response}");
                                errors.fetch_add(1, Ordering::Relaxed);
                            } else if response.get("cache_hit").and_then(Json::as_bool)
                                == Some(true)
                            {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("samm-load: transport error: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    PassTally {
        latencies: latencies.snapshot(),
        hits: hits.into_inner(),
        errors: errors.into_inner(),
    }
}

/// Every family a healthy server's exposition must carry after a load
/// run — the counters/histograms `--prom` asserts on.
const REQUIRED_FAMILIES: [&str; 4] = [
    "samm_requests_total",
    "samm_request_latency_seconds",
    "samm_cache_hits_total",
    "samm_closure_rule_applications_total",
];

/// Scrapes `GET /metrics` from the server's plain-HTTP Prometheus
/// listener and validates the body with the text-format checker.
fn scrape_prom(addr: &str) -> Result<(), String> {
    let resolved: SocketAddr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .ok_or_else(|| format!("cannot resolve '{addr}'"))?;
    let mut stream = TcpStream::connect_timeout(&resolved, TIMEOUT)
        .map_err(|e| format!("connect {resolved}: {e}"))?;
    stream
        .set_read_timeout(Some(TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: samm\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "no header/body separator in HTTP response".to_owned())?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("non-200 response: {status}"));
    }
    let summary = prom::check(body).map_err(|e| format!("invalid exposition: {e}"))?;
    for family in REQUIRED_FAMILIES {
        if !summary.has_family(family) {
            return Err(format!("exposition is missing family {family}"));
        }
    }
    println!(
        "prom scrape ok: {} families, {} samples",
        summary.families.len(),
        summary.samples
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = parse_args();
    let addr: SocketAddr = match opts.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("samm-load: cannot resolve '{}'", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let entries = subset_entries(&opts.subset);
    let lines = workload(&entries, &opts.engine);
    println!(
        "samm-load: {} requests/pass ({} tests, subset {}), {} pass(es), concurrency {}",
        lines.len(),
        entries.len(),
        opts.subset,
        opts.passes,
        opts.concurrency
    );

    let mut total_errors = 0u64;
    let mut total_hits = 0u64;
    for pass in 1..=opts.passes.max(1) {
        let started = Instant::now();
        let tally = run_pass(addr, &lines, opts.concurrency);
        let wall = started.elapsed();
        let served = tally.latencies.count;
        let hit_rate = if served == 0 {
            0.0
        } else {
            100.0 * tally.hits as f64 / served as f64
        };
        println!(
            "pass {pass}: {served} ok in {:.3}s ({:.1} req/s) hit-rate {hit_rate:.1}% \
             p50 {:.2}ms p90 {:.2}ms p99 {:.2}ms max {:.2}ms errors {}",
            wall.as_secs_f64(),
            served as f64 / wall.as_secs_f64().max(1e-9),
            quantile_ms(&tally.latencies, 0.50),
            quantile_ms(&tally.latencies, 0.90),
            quantile_ms(&tally.latencies, 0.99),
            tally.latencies.max as f64 / 1e6,
            tally.errors,
        );
        total_errors += tally.errors;
        total_hits += tally.hits;
    }
    println!("total cache hits: {total_hits}");
    println!("total protocol errors: {total_errors}");

    if let Some(prom_addr) = &opts.prom {
        if let Err(e) = scrape_prom(prom_addr) {
            eprintln!("samm-load: prom scrape failed: {e}");
            total_errors += 1;
        }
    }

    if opts.shutdown {
        match Client::connect(addr, TIMEOUT)
            .and_then(|mut c| c.request_raw("{\"kind\":\"shutdown\"}"))
        {
            Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                println!("server draining");
            }
            Ok(response) => {
                eprintln!("samm-load: shutdown refused: {response}");
                total_errors += 1;
            }
            Err(e) => {
                eprintln!("samm-load: shutdown failed: {e}");
                total_errors += 1;
            }
        }
    }

    if total_errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
