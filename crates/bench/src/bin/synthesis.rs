//! Complete small-world model comparison: sweeps *every* program of a
//! bounded litmus family and tabulates, for each adjacent pair of the
//! model chain, how many programs separate them — the systematic
//! counterpart of the paper's hand-picked examples.
//!
//! Run with: `cargo run --release -p samm-bench --bin synthesis`
//!
//! The sweep shares one content-addressed enumeration cache across the
//! chain pairs, so each middle model (TSO, PSO, Weak) is enumerated
//! once per program instead of twice; the final line reports the hit
//! rate. The worker count comes from the first CLI argument, else
//! `SAMM_JOBS`, else the host's core count.

use std::time::Instant;

use samm_core::cache::EnumCache;
use samm_core::enumerate::default_parallelism;
use samm_litmus::synthesis::{
    diff_models_cached, diff_models_parallel_cached, programs, SynthConfig,
};
use samm_litmus::ModelSel;

/// Worker count for the parallel sweep: first CLI argument, else
/// `SAMM_JOBS`, else the host's available parallelism.
fn workers() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(default_parallelism)
}

fn sweep(config: &SynthConfig, label: &str, cache: &EnumCache) {
    println!(
        "\n=== family `{label}`: {} threads × {} ops, {} locations{} — {} programs ===",
        config.threads,
        config.ops_per_thread,
        config.locations,
        if config.include_fences {
            ", fences"
        } else {
            ""
        },
        config.family_size()
    );
    let pairs = [
        (ModelSel::Sc, ModelSel::Tso),
        (ModelSel::Tso, ModelSel::Pso),
        (ModelSel::Pso, ModelSel::Weak),
        (ModelSel::Weak, ModelSel::WeakSpec),
    ];
    for (strong, weak) in pairs {
        let serial_start = Instant::now();
        let summary = diff_models_cached(config, &strong.policy(), &weak.policy(), cache);
        let serial_time = serial_start.elapsed();
        let par_start = Instant::now();
        let par =
            diff_models_parallel_cached(config, &strong.policy(), &weak.policy(), workers(), cache);
        let par_time = par_start.elapsed();
        assert_eq!(par.differing, summary.differing, "engines must agree");
        assert_eq!(par.first_exemplar, summary.first_exemplar);
        print!(
            "  [serial {serial_time:.3?}, {} workers {par_time:.3?}] ",
            workers()
        );
        print!(
            "{:>5} vs {:<10} differ on {:>4}/{} programs",
            strong.name(),
            weak.name(),
            summary.differing,
            summary.programs
        );
        match summary.first_exemplar {
            Some(index) => {
                println!("   first exemplar: #{index}");
                let program = programs(config).nth(index).expect("index in range");
                for (t, thread) in program.threads().iter().enumerate() {
                    let ops: Vec<String> =
                        thread.instrs().iter().map(ToString::to_string).collect();
                    println!("        T{t}: {}", ops.join(" ; "));
                }
            }
            None => println!(),
        }
    }
}

fn main() {
    println!("samm synthesis — exhaustive small-world model comparison");
    let cache = EnumCache::new(65_536);
    sweep(&SynthConfig::default(), "2x2", &cache);
    sweep(
        &SynthConfig {
            include_fences: true,
            ..SynthConfig::default()
        },
        "2x2+fences",
        &cache,
    );
    let stats = cache.stats();
    println!(
        "\ncache: {:.1}% hit rate over {} lookups ({} entries)",
        100.0 * stats.hit_rate(),
        stats.hits + stats.misses,
        stats.entries
    );
    println!("inclusion (stronger ⊆ weaker) was asserted on every program of every family ✔");
}
