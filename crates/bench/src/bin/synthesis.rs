//! Complete small-world model comparison: sweeps *every* program of a
//! bounded litmus family and tabulates, for each adjacent pair of the
//! model chain, how many programs separate them — the systematic
//! counterpart of the paper's hand-picked examples.
//!
//! Run with: `cargo run --release -p samm-bench --bin synthesis`

use std::time::Instant;

use samm_litmus::synthesis::{diff_models, diff_models_parallel, programs, SynthConfig};
use samm_litmus::ModelSel;

/// Worker count for the parallel sweep: first CLI argument, else the
/// host's available parallelism.
fn workers() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

fn sweep(config: &SynthConfig, label: &str) {
    println!(
        "\n=== family `{label}`: {} threads × {} ops, {} locations{} — {} programs ===",
        config.threads,
        config.ops_per_thread,
        config.locations,
        if config.include_fences {
            ", fences"
        } else {
            ""
        },
        config.family_size()
    );
    let pairs = [
        (ModelSel::Sc, ModelSel::Tso),
        (ModelSel::Tso, ModelSel::Pso),
        (ModelSel::Pso, ModelSel::Weak),
        (ModelSel::Weak, ModelSel::WeakSpec),
    ];
    for (strong, weak) in pairs {
        let serial_start = Instant::now();
        let summary = diff_models(config, &strong.policy(), &weak.policy());
        let serial_time = serial_start.elapsed();
        let par_start = Instant::now();
        let par = diff_models_parallel(config, &strong.policy(), &weak.policy(), workers());
        let par_time = par_start.elapsed();
        assert_eq!(par.differing, summary.differing, "engines must agree");
        assert_eq!(par.first_exemplar, summary.first_exemplar);
        print!(
            "  [serial {serial_time:.3?}, {} workers {par_time:.3?}] ",
            workers()
        );
        print!(
            "{:>5} vs {:<10} differ on {:>4}/{} programs",
            strong.name(),
            weak.name(),
            summary.differing,
            summary.programs
        );
        match summary.first_exemplar {
            Some(index) => {
                println!("   first exemplar: #{index}");
                let program = programs(config).nth(index).expect("index in range");
                for (t, thread) in program.threads().iter().enumerate() {
                    let ops: Vec<String> =
                        thread.instrs().iter().map(ToString::to_string).collect();
                    println!("        T{t}: {}", ops.join(" ; "));
                }
            }
            None => println!(),
        }
    }
}

fn main() {
    println!("samm synthesis — exhaustive small-world model comparison");
    sweep(&SynthConfig::default(), "2x2");
    sweep(
        &SynthConfig {
            include_fences: true,
            ..SynthConfig::default()
        },
        "2x2+fences",
    );
    println!("\ninclusion (stronger ⊆ weaker) was asserted on every program of every family ✔");
}
