//! Complete small-world model comparison: sweeps *every* program of a
//! bounded litmus family and tabulates, for each adjacent pair of the
//! model chain, how many programs separate them — the systematic
//! counterpart of the paper's hand-picked examples.
//!
//! Run with: `cargo run --release -p samm-bench --bin synthesis`

use samm_litmus::synthesis::{diff_models, programs, SynthConfig};
use samm_litmus::ModelSel;

fn sweep(config: &SynthConfig, label: &str) {
    println!(
        "\n=== family `{label}`: {} threads × {} ops, {} locations{} — {} programs ===",
        config.threads,
        config.ops_per_thread,
        config.locations,
        if config.include_fences {
            ", fences"
        } else {
            ""
        },
        config.family_size()
    );
    let pairs = [
        (ModelSel::Sc, ModelSel::Tso),
        (ModelSel::Tso, ModelSel::Pso),
        (ModelSel::Pso, ModelSel::Weak),
        (ModelSel::Weak, ModelSel::WeakSpec),
    ];
    for (strong, weak) in pairs {
        let summary = diff_models(config, &strong.policy(), &weak.policy());
        print!(
            "{:>5} vs {:<10} differ on {:>4}/{} programs",
            strong.name(),
            weak.name(),
            summary.differing,
            summary.programs
        );
        match summary.first_exemplar {
            Some(index) => {
                println!("   first exemplar: #{index}");
                let program = programs(config).nth(index).expect("index in range");
                for (t, thread) in program.threads().iter().enumerate() {
                    let ops: Vec<String> =
                        thread.instrs().iter().map(ToString::to_string).collect();
                    println!("        T{t}: {}", ops.join(" ; "));
                }
            }
            None => println!(),
        }
    }
}

fn main() {
    println!("samm synthesis — exhaustive small-world model comparison");
    sweep(&SynthConfig::default(), "2x2");
    sweep(
        &SynthConfig {
            include_fences: true,
            ..SynthConfig::default()
        },
        "2x2+fences",
    );
    println!("\ninclusion (stronger ⊆ weaker) was asserted on every program of every family ✔");
}
