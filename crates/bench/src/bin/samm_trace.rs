//! Explains catalog litmus outcomes: witnesses for allowed conditions,
//! refutations for forbidden ones.
//!
//! ```text
//! samm-trace <test> [--model <name>] [--condition <index>]
//!                   [--dot <file>] [--json <file>] [--stats]
//!                   [--jobs <n>] [--cache <file>]
//! ```
//!
//! For every verdict of the named catalog entry (optionally narrowed to
//! one model and/or one condition index), the tool either extracts a
//! replayable witness (the execution graph, each load's observed store,
//! and a serialization) or a refutation naming the Store Atomicity rule
//! that empties the blocked load's candidate set. Both artifacts are
//! re-verified before being printed.
//!
//! `--dot` writes the first witness's execution graph as Graphviz DOT
//! (closure-rule labels on the dashed Store Atomicity edges), `--json`
//! writes all artifacts as a JSON array, and `--stats` prints the
//! instrumented enumeration counters for each model.
//!
//! `--jobs <n>` sets [`EnumConfig::parallelism`] (default: the
//! `SAMM_JOBS` environment variable, else the machine's core count).
//! `--cache <file>` answers the `--stats` enumerations from a persisted
//! content-addressed cache, writing it back on exit.

use std::process::ExitCode;

use samm_core::cache::{cached_enumerate, EnumCache};
use samm_core::dot::{render, DotOptions};
use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::explain::{find_witness, refute, Goal, Refutation, RefuteOutcome};
use samm_litmus::catalog::{self, CatalogEntry, ModelSel};

struct Args {
    test: String,
    model: Option<ModelSel>,
    condition: Option<usize>,
    dot: Option<String>,
    json: Option<String>,
    stats: bool,
    jobs: Option<usize>,
    cache: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: samm-trace <test> [--model <name>] [--condition <index>] \
         [--dot <file>] [--json <file>] [--stats] [--jobs <n>] [--cache <file>]"
    );
    eprintln!("tests: {}", catalog_names().join(", "));
    eprintln!(
        "models: {}",
        ModelSel::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn catalog_names() -> Vec<String> {
    catalog::all().iter().map(|e| e.test.name.clone()).collect()
}

fn parse_model(name: &str) -> Option<ModelSel> {
    ModelSel::ALL
        .iter()
        .copied()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

fn parse_args(argv: &[String]) -> Option<Args> {
    let mut args = Args {
        test: String::new(),
        model: None,
        condition: None,
        dot: None,
        json: None,
        stats: false,
        jobs: None,
        cache: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => args.model = Some(parse_model(it.next()?)?),
            "--condition" => args.condition = it.next()?.parse().ok(),
            "--dot" => args.dot = Some(it.next()?.clone()),
            "--json" => args.json = Some(it.next()?.clone()),
            "--stats" => args.stats = true,
            "--jobs" => args.jobs = Some(it.next()?.parse().ok().filter(|&n| n > 0)?),
            "--cache" => args.cache = Some(it.next()?.clone()),
            other if args.test.is_empty() && !other.starts_with('-') => {
                args.test = other.to_owned();
            }
            _ => return None,
        }
    }
    if args.test.is_empty() {
        None
    } else {
        Some(args)
    }
}

fn find_entry(name: &str) -> Option<CatalogEntry> {
    catalog::all()
        .into_iter()
        .find(|e| e.test.name.eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(args) = parse_args(&argv) else {
        return usage();
    };
    let Some(entry) = find_entry(&args.test) else {
        eprintln!(
            "unknown test {:?}; known: {}",
            args.test,
            catalog_names().join(", ")
        );
        return ExitCode::from(2);
    };

    let mut builder = EnumConfig::builder().keep_executions(false);
    if let Some(jobs) = args.jobs {
        builder = builder.parallelism(jobs);
    }
    let config = builder.build();
    let cache = args.cache.as_ref().map(|path| {
        let cache = EnumCache::new(1024);
        if std::path::Path::new(path).exists() {
            match cache.load_from(path) {
                Ok((loaded, skipped)) => {
                    println!("cache: loaded {loaded} entr(ies) from {path} ({skipped} skipped)");
                }
                Err(e) => eprintln!("cache: cannot load {path}: {e}"),
            }
        }
        cache
    });
    println!("{} — {}", entry.test.name, entry.description);

    let mut failures = 0usize;
    let mut first_witness_dot: Option<String> = None;
    let mut json_items: Vec<String> = Vec::new();

    for verdict in &entry.verdicts {
        if args.model.is_some_and(|m| m != verdict.model) {
            continue;
        }
        if args.condition.is_some_and(|c| c != verdict.condition) {
            continue;
        }
        let policy = verdict.model.policy();
        let condition = &entry.test.conditions[verdict.condition];
        let goal = Goal::new(condition.clauses.clone());
        println!(
            "\n[{}] {} — paper says {}",
            verdict.model.name(),
            condition.text,
            if verdict.allowed {
                "allowed"
            } else {
                "forbidden"
            },
        );

        if verdict.allowed {
            match find_witness(&entry.test.program, &policy, &config, &goal) {
                Ok(Some(witness)) => {
                    match witness.verify(&entry.test.program, &policy, config.max_nodes_per_thread)
                    {
                        Ok(()) => print!("{witness}"),
                        Err(e) => {
                            println!("WITNESS FAILED TO VERIFY: {e}");
                            failures += 1;
                        }
                    }
                    if first_witness_dot.is_none() {
                        let options = DotOptions {
                            title: format!(
                                "{} [{}] {}",
                                entry.test.name,
                                verdict.model.name(),
                                condition.text
                            ),
                            ..DotOptions::default()
                        };
                        first_witness_dot = Some(render(&witness.execution, &options));
                    }
                    json_items.push(format!(
                        "{{\"model\":\"{}\",\"kind\":\"witness\",\"artifact\":{}}}",
                        verdict.model.name(),
                        witness.to_json()
                    ));
                }
                Ok(None) => {
                    println!("NO WITNESS FOUND (catalog claims allowed)");
                    failures += 1;
                }
                Err(e) => {
                    println!("enumeration failed: {e}");
                    failures += 1;
                }
            }
        } else {
            match refute(&entry.test.program, &policy, &config, &goal) {
                Ok(RefuteOutcome::Refuted(refutation)) => {
                    println!("{refutation}");
                    if let Refutation::Blocked(b) = &refutation {
                        match b.verify(&entry.test.program, &policy, config.max_nodes_per_thread) {
                            Ok(()) => println!("  (machine-checked)"),
                            Err(e) => {
                                println!("REFUTATION FAILED TO VERIFY: {e}");
                                failures += 1;
                            }
                        }
                        json_items.push(format!(
                            "{{\"model\":\"{}\",\"kind\":\"refutation\",\"artifact\":{}}}",
                            verdict.model.name(),
                            b.to_json()
                        ));
                    }
                }
                Ok(RefuteOutcome::Observable(w)) => {
                    println!(
                        "OBSERVABLE (catalog claims forbidden): outcome {}",
                        w.outcome
                    );
                    failures += 1;
                }
                Err(e) => {
                    println!("enumeration failed: {e}");
                    failures += 1;
                }
            }
        }
    }

    if args.stats {
        println!();
        let observed = EnumConfig {
            observe: true,
            ..config.clone()
        };
        for model in entry.models() {
            if args.model.is_some_and(|m| m != model) {
                continue;
            }
            let outcome = match &cache {
                Some(cache) => cached_enumerate(
                    cache,
                    &entry.test.program,
                    &model.policy(),
                    &observed,
                    enumerate,
                )
                .map(|(value, hit)| (value.stats, hit)),
                None => enumerate(&entry.test.program, &model.policy(), &observed)
                    .map(|result| (result.stats, false)),
            };
            match outcome {
                Ok((stats, hit)) => {
                    println!(
                        "stats[{}]{} = {}",
                        model.name(),
                        if hit { " [cached]" } else { "" },
                        stats.to_json()
                    );
                }
                Err(e) => {
                    println!("stats[{}]: enumeration failed: {e}", model.name());
                    failures += 1;
                }
            }
        }
    }

    if let (Some(cache), Some(path)) = (&cache, &args.cache) {
        match cache.save_to(path) {
            Ok(saved) => println!("cache: saved {saved} entr(ies) to {path}"),
            Err(e) => eprintln!("cache: cannot save {path}: {e}"),
        }
    }

    if let Some(path) = &args.dot {
        match &first_witness_dot {
            Some(dot) => {
                if let Err(e) = std::fs::write(path, dot) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                println!("\nwrote witness DOT to {path}");
            }
            None => eprintln!("\nno witness produced; {path} not written"),
        }
    }
    if let Some(path) = &args.json {
        let body = format!("[{}]\n", json_items.join(","));
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {} artifact(s) to {path}", json_items.len());
    }

    if failures > 0 {
        eprintln!("\n{failures} artifact(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
