//! Regenerates every figure/table of the paper and prints paper-claim vs
//! measured verdicts — the reproduction record behind `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release -p samm-bench --bin experiments`
//!
//! Flags: `--jobs <n>` sets `EnumConfig::parallelism` for every
//! experiment (default: `SAMM_JOBS`, else the core count); `--cache
//! <file>` loads/saves the content-addressed enumeration cache, so a
//! rerun answers repeated (program, policy, config) queries from disk.
//! All verdict-matrix experiments share one in-process cache either
//! way; the cache-summary section at the end reports the hit rate.

use std::sync::OnceLock;

use samm_core::cache::{cached_enumerate, EnumCache};
use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::policy::Policy;
use samm_core::speculation;
use samm_litmus::{catalog, expect, ModelSel};

/// `--jobs` override, set once in `main`.
static JOBS: OnceLock<usize> = OnceLock::new();

/// The process-wide content-addressed enumeration cache shared by every
/// verdict-matrix experiment.
static CACHE: OnceLock<EnumCache> = OnceLock::new();

fn cache() -> &'static EnumCache {
    CACHE.get_or_init(|| EnumCache::new(1024))
}

fn config() -> EnumConfig {
    let mut builder = EnumConfig::builder().keep_executions(false);
    if let Some(&jobs) = JOBS.get() {
        builder = builder.parallelism(jobs);
    }
    builder.build()
}

fn heading(s: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{s}");
    println!("{}", "=".repeat(72));
}

/// E1 / Figure 1: the reordering-axiom tables.
fn experiment_tables() {
    heading("E1 — Figure 1: reordering axiom tables");
    for policy in [
        Policy::weak(),
        Policy::sequential_consistency(),
        Policy::tso(),
        Policy::naive_tso(),
        Policy::pso(),
    ] {
        println!("\n{policy}");
    }
}

/// E3–E9: the worked figures, checked verdict by verdict.
fn experiment_figures() {
    heading("E3–E9 — paper figures 3, 4, 5, 7, 8, 10 (verdict matrix)");
    let mut pass = 0usize;
    let mut total = 0usize;
    for entry in catalog::paper_figures() {
        let report =
            expect::run_entry_cached(&entry, &config(), cache()).expect("enumeration succeeds");
        println!("\n{report}");
        total += report.rows.len();
        pass += report.rows.iter().filter(|r| r.pass()).count();
    }
    println!("\nfigure verdicts: {pass}/{total} match the paper");
}

/// Writes DOT renderings of each paper figure's key execution to
/// `target/figures/` (render with `dot -Tpng`).
fn emit_figure_dots() {
    use samm_core::dot::{render, DotOptions};
    let dir = std::path::Path::new("target/figures");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("cannot create {}; skipping DOT output", dir.display());
        return;
    }
    let cases = [
        (catalog::fig3(), ModelSel::Weak, 1usize),
        (catalog::fig4(), ModelSel::Weak, 2),
        (catalog::fig5(), ModelSel::Weak, 1),
        (catalog::fig7(), ModelSel::Weak, 0),
        (catalog::fig8(), ModelSel::WeakSpec, 0),
        (catalog::fig10(), ModelSel::Tso, 0),
    ];
    for (entry, model, cond_index) in cases {
        let result = enumerate(&entry.test.program, &model.policy(), &EnumConfig::default())
            .expect("enumeration succeeds");
        let cond = &entry.test.conditions[cond_index];
        if let Some(exec) = result
            .executions
            .iter()
            .find(|b| cond.matches(&b.outcome()))
        {
            let dot = render(
                exec,
                &DotOptions {
                    title: format!("{} under {} ({})", entry.test.name, model.name(), cond.text),
                    loads_and_stores_only: true,
                    ..DotOptions::default()
                },
            );
            let path = dir.join(format!("{}_{}.dot", entry.test.name, model.name()));
            if std::fs::write(&path, dot).is_ok() {
                println!("wrote {}", path.display());
            }
        }
    }
}

/// The classic litmus suite across all models.
fn experiment_classics() {
    heading("classic litmus suite (verdict matrix)");
    let mut pass = 0usize;
    let mut total = 0usize;
    for entry in catalog::all() {
        if entry.test.name.starts_with("fig") {
            continue;
        }
        let report =
            expect::run_entry_cached(&entry, &config(), cache()).expect("enumeration succeeds");
        println!("\n{report}");
        total += report.rows.len();
        pass += report.rows.iter().filter(|r| r.pass()).count();
    }
    println!("\nclassic verdicts: {pass}/{total} match the expected model behaviour");
}

/// E10: the outcome-count bracketing table.
fn experiment_bracketing() {
    heading("E10 — outcome counts per model (SC ⊆ TSO ⊆ PSO ⊆ Weak ⊆ Weak+spec)");
    print!("{:<12}", "test");
    for m in ModelSel::ALL {
        print!("{:>10}", m.name());
    }
    println!();
    for entry in catalog::all() {
        print!("{:<12}", entry.test.name);
        for model in ModelSel::ALL {
            let (value, _) = cached_enumerate(
                cache(),
                &entry.test.program,
                &model.policy(),
                &config(),
                enumerate,
            )
            .expect("enumeration succeeds");
            print!("{:>10}", value.outcomes.len());
        }
        println!();
    }
    println!("\n(naive TSO may dip below TSO — that is Figure 11's point)");
}

/// E8 focus: the speculation case study in numbers.
fn experiment_speculation() {
    heading("E8 — Figure 8/9: address-aliasing speculation study");
    let entry = catalog::fig8();
    let report =
        speculation::compare(&entry.test.program, &Policy::weak(), &config()).expect("runs");
    println!(
        "non-speculative outcomes: {:>3}   (explored {} behaviours)",
        report.base.outcomes.len(),
        report.base.stats.explored
    );
    println!(
        "speculative outcomes:     {:>3}   (explored {}, rolled back {})",
        report.speculative.outcomes.len(),
        report.speculative.stats.explored,
        report.rollbacks()
    );
    println!(
        "new behaviours admitted by speculation: {}",
        report.new_outcomes().len()
    );
    println!(
        "non-speculative ⊆ speculative: {}",
        if report.base_is_subset() {
            "yes"
        } else {
            "NO (bug!)"
        }
    );
}

/// E9 focus: Figure 10 across the four models of Figure 11.
fn experiment_tso() {
    heading("E9 — Figure 10/11: the TSO bypass execution across models");
    let entry = catalog::fig10();
    let cond = &entry.test.conditions[0];
    println!("condition: {}", cond.text);
    for model in [
        ModelSel::Sc,
        ModelSel::NaiveTso,
        ModelSel::Tso,
        ModelSel::Pso,
        ModelSel::Weak,
    ] {
        let outcomes = cached_enumerate(
            cache(),
            &entry.test.program,
            &model.policy(),
            &config(),
            enumerate,
        )
        .expect("enumeration succeeds")
        .0
        .outcomes;
        println!(
            "  {:9} -> {} ({} outcomes total)",
            model.name(),
            if cond.observable_in(&outcomes) {
                "allowed"
            } else {
                "forbidden"
            },
            outcomes.len()
        );
    }
    println!("paper: forbidden under SC and naive reordering, allowed by TSO-with-bypass and Weak");
}

/// E12: coherence-protocol conformance.
fn experiment_coherence() {
    heading("E12 — section 4.2: MSI directory protocol vs Store Atomicity");
    use samm_coherence::{check_trace, CoherentSystem, SystemConfig};
    let mut runs = 0usize;
    let mut consistent = 0usize;
    let mut sc_outcomes = 0usize;
    for entry in catalog::all() {
        let program = &entry.test.program;
        let sc = samm_oper::enumerate_sc(program, 2_000_000).expect("SC enumeration");
        for seed in 0..10 {
            let run = CoherentSystem::new(
                program,
                SystemConfig {
                    seed,
                    ..SystemConfig::default()
                },
            )
            .run()
            .expect("protocol completes");
            runs += 1;
            if check_trace(&run.trace, |a| program.initial_value(a)).consistent {
                consistent += 1;
            }
            if sc.contains(&run.outcome) {
                sc_outcomes += 1;
            }
        }
    }
    println!("protocol runs:                     {runs}");
    println!("traces satisfying Store Atomicity: {consistent}/{runs}");
    println!("outcomes sequentially consistent:  {sc_outcomes}/{runs}");
}

/// Compression: "one graph represents many instruction interleavings with
/// identical behaviors" (paper section 1) — measured as serializations per
/// execution.
fn experiment_compression() {
    heading("graph compression — serializations represented per execution");
    println!(
        "{:<12} {:>11} {:>16} {:>9}",
        "test", "executions", "serializations", "ratio"
    );
    let cfg = EnumConfig::default();
    for entry in [
        catalog::sb(),
        catalog::mp(),
        catalog::fig3(),
        catalog::fig7(),
    ] {
        let result = enumerate(&entry.test.program, &Policy::weak(), &cfg).expect("runs");
        let mut total = 0usize;
        for exec in &result.executions {
            total += samm_core::serialize::serializations(exec, 100_000).len();
        }
        let execs = result.executions.len();
        println!(
            "{:<12} {:>11} {:>16} {:>8.1}x",
            entry.test.name,
            execs,
            total,
            total as f64 / execs.max(1) as f64
        );
    }
}

/// E13: enumeration statistics (supplementary; the paper reports none).
fn experiment_stats() {
    heading("E13 — enumeration statistics (supplementary)");
    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>9} {:>11}",
        "test", "model", "explored", "forks", "deduped", "executions"
    );
    for entry in catalog::paper_figures() {
        for model in [ModelSel::Sc, ModelSel::Weak] {
            let (r, _) = cached_enumerate(
                cache(),
                &entry.test.program,
                &model.policy(),
                &config(),
                enumerate,
            )
            .expect("enumeration succeeds");
            println!(
                "{:<12} {:>9} {:>10} {:>9} {:>9} {:>11}",
                entry.test.name,
                model.name(),
                r.stats.explored,
                r.stats.forks,
                r.stats.deduped,
                r.stats.distinct_executions
            );
        }
    }
}

/// E17: the work-stealing parallel enumerator — engine equivalence over
/// the full catalog, plus wall-clock per worker count.
fn experiment_parallel() {
    use std::time::Instant;
    heading("E17 — work-stealing parallel enumeration (engine equivalence + wall-clock)");
    let entries = catalog::all();
    let serial_start = Instant::now();
    let serial = expect::run_all(&entries, &config()).expect("serial harness succeeds");
    let serial_time = serial_start.elapsed();
    println!(
        "serial:   full catalog ({} entries) in {serial_time:.3?}",
        entries.len()
    );
    for workers in [2, 4, 8] {
        let par_config = EnumConfig {
            parallelism: workers,
            ..config()
        };
        let start = Instant::now();
        let parallel =
            expect::run_all_parallel(&entries, &par_config).expect("parallel harness succeeds");
        let elapsed = start.elapsed();
        let mut rows = 0usize;
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.rows.len(), p.rows.len(), "{}: row count differs", s.name);
            for (sr, pr) in s.rows.iter().zip(&p.rows) {
                assert_eq!(
                    (sr.observed_allowed, sr.outcomes, sr.executions),
                    (pr.observed_allowed, pr.outcomes, pr.executions),
                    "{}: engines disagree on `{}`",
                    s.name,
                    sr.condition
                );
                rows += 1;
            }
        }
        println!(
            "{workers} workers: full catalog in {elapsed:.3?} ({:.2}x vs serial), all {rows} verdict rows identical",
            serial_time.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
    println!("(speedup needs multiple cores; on a single-CPU host expect ~1x or below)");
}

/// Cache summary: what sharing one content-addressed cache across all
/// verdict-matrix experiments bought this run.
fn experiment_cache() {
    heading("E21 — content-addressed enumeration cache (this run)");
    let stats = cache().stats();
    println!("{}", stats.to_json());
    println!(
        "hit rate {:.1}% over {} lookups ({} entries resident)",
        100.0 * stats.hit_rate(),
        stats.hits + stats.misses,
        stats.entries
    );
}

fn main() {
    let mut cache_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let jobs = args.next().and_then(|v| v.parse::<usize>().ok());
                match jobs.filter(|&n| n > 0) {
                    Some(jobs) => {
                        let _ = JOBS.set(jobs);
                    }
                    None => {
                        eprintln!("experiments: --jobs needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--cache" => match args.next() {
                Some(path) => cache_path = Some(path),
                None => {
                    eprintln!("experiments: --cache needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "experiments: unknown argument '{other}' (flags: --jobs N, --cache FILE)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &cache_path {
        if std::path::Path::new(path).exists() {
            match cache().load_from(path) {
                Ok((loaded, skipped)) => {
                    println!("cache: loaded {loaded} entr(ies) from {path} ({skipped} skipped)");
                }
                Err(e) => eprintln!("cache: cannot load {path}: {e}"),
            }
        }
    }

    println!("samm experiments — reproducing 'Memory Model = Instruction Reordering + Store Atomicity' (ISCA 2006)");
    experiment_tables();
    experiment_figures();
    emit_figure_dots();
    experiment_classics();
    experiment_bracketing();
    experiment_speculation();
    experiment_tso();
    experiment_coherence();
    experiment_compression();
    experiment_stats();
    experiment_parallel();
    experiment_cache();
    if let Some(path) = &cache_path {
        match cache().save_to(path) {
            Ok(saved) => println!("cache: saved {saved} entr(ies) to {path}"),
            Err(e) => eprintln!("cache: cannot save {path}: {e}"),
        }
    }
    println!("\nDone. See EXPERIMENTS.md for the paper-vs-measured record.");
}
