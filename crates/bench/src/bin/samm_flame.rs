//! `samm-flame` — fold exported trace spans into a flamegraph.
//!
//! ```text
//! samm-flame [--collapsed] FILE.jsonl [FILE.jsonl ...]
//! ```
//!
//! Reads the JSONL span files written by `samm-serve --trace-log` and
//! `samm-load --trace` (any mix — spans link across files by trace id,
//! so concatenating the client's file with every node's file yields
//! complete client→server→forward→engine trees), reassembles each
//! trace's parent/child tree, and prints:
//!
//! * by default, a **text profile per request kind**: for every `req`
//!   attribute seen on root spans, the span names that ran under it
//!   ranked by self time (duration minus the duration of direct
//!   children, clamped at zero), with call counts and the share of the
//!   kind's total self time;
//! * with `--collapsed`, **collapsed-stack lines** in the format
//!   flamegraph tooling consumes: `kind;name;name <self_us>`, one line
//!   per unique stack, counts in microseconds.
//!
//! Spans whose parent is absent from the input (for example a server
//! span whose originating client did not trace) root their own tree,
//! so partial captures still render. Exits non-zero when no span could
//! be parsed from the inputs.

use std::collections::BTreeMap;
use std::process::ExitCode;

use samm_serve::json::Json;

fn usage() -> ! {
    eprintln!("usage: samm-flame [--collapsed] FILE.jsonl [FILE.jsonl ...]");
    std::process::exit(2);
}

/// One span row parsed from a JSONL trace file.
#[derive(Debug, Clone)]
struct Span {
    trace: String,
    id: String,
    parent: String,
    name: String,
    dur_ns: u64,
    /// The `req` attribute (request kind), when the span carried one.
    req: Option<String>,
}

/// Parses one JSONL line into a [`Span`]; `None` for lines that are
/// not span records (blank lines, foreign JSONL, parse errors).
fn parse_span(line: &str) -> Option<Span> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let value = samm_serve::json::parse(line).ok()?;
    let field = |key: &str| Some(value.get(key)?.as_str()?.to_owned());
    Some(Span {
        trace: field("trace")?,
        id: field("span")?,
        parent: field("parent")?,
        name: field("name")?,
        dur_ns: value.get("dur_ns").and_then(Json::as_f64)? as u64,
        req: field("req"),
    })
}

/// The fold: collapsed stacks (µs by stack string) plus the per-kind
/// name profile (calls and self-µs by span name, per request kind).
#[derive(Default)]
struct Folded {
    /// `kind;name;...;name` → summed self time in microseconds.
    stacks: BTreeMap<String, u64>,
    /// request kind → span name → (calls, self µs).
    kinds: BTreeMap<String, BTreeMap<String, (u64, u64)>>,
    /// request kind → number of root spans observed.
    roots: BTreeMap<String, u64>,
    traces: usize,
}

fn fold(spans: &[Span]) -> Folded {
    let mut folded = Folded::default();
    // Group spans by trace id; each group reassembles independently.
    let mut by_trace: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        by_trace.entry(&span.trace).or_default().push(i);
    }
    folded.traces = by_trace.len();
    for (_, members) in by_trace {
        let ids: BTreeMap<&str, usize> =
            members.iter().map(|&i| (spans[i].id.as_str(), i)).collect();
        let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for &i in &members {
            match ids.get(spans[i].parent.as_str()) {
                // A span that names itself as parent would recurse
                // forever; treat it as a root like any other orphan.
                Some(&p) if p != i => children.entry(p).or_default().push(i),
                _ => roots.push(i),
            }
        }
        for root in roots {
            let kind = spans[root]
                .req
                .clone()
                .unwrap_or_else(|| spans[root].name.clone());
            *folded.roots.entry(kind.clone()).or_default() += 1;
            // Iterative DFS carrying the stack path; no recursion so
            // adversarial deep traces cannot blow the stack.
            let mut work = vec![(root, kind.clone())];
            while let Some((i, path)) = work.pop() {
                let kids = children.get(&i).cloned().unwrap_or_default();
                let kids_ns: u64 = kids.iter().map(|&k| spans[k].dur_ns).sum();
                let self_us = spans[i].dur_ns.saturating_sub(kids_ns) / 1_000;
                let path = format!("{path};{}", spans[i].name);
                *folded.stacks.entry(path.clone()).or_default() += self_us;
                let by_name = folded.kinds.entry(kind.clone()).or_default();
                let slot = by_name.entry(spans[i].name.clone()).or_default();
                slot.0 += 1;
                slot.1 += self_us;
                for kid in kids {
                    work.push((kid, path.clone()));
                }
            }
        }
    }
    folded
}

fn render_collapsed(folded: &Folded) -> String {
    let mut out = String::new();
    for (stack, us) in &folded.stacks {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

fn render_profile(folded: &Folded) -> String {
    let mut out = format!(
        "samm-flame: {} trace(s), {} unique stack(s)\n",
        folded.traces,
        folded.stacks.len()
    );
    for (kind, by_name) in &folded.kinds {
        let total: u64 = by_name.values().map(|(_, us)| us).sum();
        let roots = folded.roots.get(kind).copied().unwrap_or(0);
        out.push_str(&format!(
            "\n== {kind} ({roots} root span(s), {total} us self time) ==\n"
        ));
        out.push_str(&format!(
            "{:<16} {:>8} {:>12} {:>7}\n",
            "span", "calls", "self us", "share"
        ));
        let mut rows: Vec<_> = by_name.iter().collect();
        rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
        for (name, (calls, us)) in rows {
            let share = if total == 0 {
                0.0
            } else {
                100.0 * *us as f64 / total as f64
            };
            out.push_str(&format!("{name:<16} {calls:>8} {us:>12} {share:>6.1}%\n"));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut collapsed = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--collapsed" => collapsed = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("samm-flame: unknown argument '{other}'");
                usage();
            }
            path => files.push(path.to_owned()),
        }
    }
    if files.is_empty() {
        usage();
    }

    let mut spans = Vec::new();
    let mut skipped = 0usize;
    for path in &files {
        let body = match std::fs::read_to_string(path) {
            Ok(body) => body,
            Err(e) => {
                eprintln!("samm-flame: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for line in body.lines() {
            match parse_span(line) {
                Some(span) => spans.push(span),
                None if line.trim().is_empty() => {}
                None => skipped += 1,
            }
        }
    }
    if spans.is_empty() {
        eprintln!(
            "samm-flame: no spans found in {} file(s) ({skipped} unparseable line(s))",
            files.len()
        );
        return ExitCode::FAILURE;
    }
    if skipped > 0 {
        eprintln!("samm-flame: skipped {skipped} unparseable line(s)");
    }

    let folded = fold(&spans);
    if collapsed {
        print!("{}", render_collapsed(&folded));
    } else {
        print!("{}", render_profile(&folded));
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: &str,
        id: &str,
        parent: &str,
        name: &str,
        dur: u64,
        req: Option<&str>,
    ) -> String {
        let mut line = format!(
            "{{\"trace\":\"{trace}\",\"span\":\"{id}\",\"parent\":\"{parent}\",\
             \"name\":\"{name}\",\"kind\":\"internal\",\"start_ns\":1,\"dur_ns\":{dur}"
        );
        if let Some(req) = req {
            line.push_str(&format!(",\"req\":\"{req}\""));
        }
        line.push('}');
        line
    }

    #[test]
    fn folds_a_forwarded_request_into_one_stack() {
        let t = "00000000000000aa";
        let zero = "0000000000000000";
        let lines = [
            span(t, "01", zero, "client", 1_000_000, Some("enumerate")),
            span(t, "02", "01", "server", 800_000, Some("enumerate")),
            span(t, "03", "02", "forward", 600_000, None),
            span(t, "04", "03", "server", 500_000, Some("enumerate")),
            span(t, "05", "04", "enumerate", 400_000, None),
            span(t, "06", "05", "phase:closure", 100_000, None),
        ];
        let spans: Vec<Span> = lines.iter().map(|l| parse_span(l).unwrap()).collect();
        assert_eq!(spans.len(), 6);
        let folded = fold(&spans);
        assert_eq!(folded.traces, 1);
        let collapsed = render_collapsed(&folded);
        assert!(
            collapsed
                .contains("enumerate;client;server;forward;server;enumerate;phase:closure 100"),
            "{collapsed}"
        );
        // client self = 1_000_000 - 800_000 = 200 us.
        assert!(collapsed.contains("enumerate;client 200"), "{collapsed}");
        let profile = render_profile(&folded);
        assert!(
            profile.contains("== enumerate (1 root span(s)"),
            "{profile}"
        );
        assert!(profile.contains("phase:closure"), "{profile}");
    }

    #[test]
    fn orphan_spans_root_their_own_tree() {
        let t = "00000000000000bb";
        let lines = [
            // Parent "99" is not in the input: a server span whose
            // client did not trace.
            span(t, "02", "99", "server", 500_000, Some("enumerate")),
            span(t, "03", "02", "enumerate", 300_000, None),
        ];
        let spans: Vec<Span> = lines.iter().map(|l| parse_span(l).unwrap()).collect();
        let folded = fold(&spans);
        let collapsed = render_collapsed(&folded);
        assert!(
            collapsed.contains("enumerate;server;enumerate 300"),
            "{collapsed}"
        );
        assert!(collapsed.contains("enumerate;server 200"), "{collapsed}");
    }

    #[test]
    fn self_parenting_spans_terminate() {
        let t = "00000000000000cc";
        let lines = [span(t, "07", "07", "server", 100_000, None)];
        let spans: Vec<Span> = lines.iter().map(|l| parse_span(l).unwrap()).collect();
        let folded = fold(&spans);
        assert!(render_collapsed(&folded).contains("server;server 100"));
    }

    #[test]
    fn non_span_lines_are_rejected() {
        assert!(parse_span("").is_none());
        assert!(parse_span("not json").is_none());
        assert!(parse_span(r#"{"event":"slow_query","id":"r1"}"#).is_none());
        assert!(parse_span(r#"{"trace":"aa","span":"bb"}"#).is_none());
    }
}
