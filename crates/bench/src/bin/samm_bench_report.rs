//! `samm-bench-report` — machine-readable enumeration benchmarks.
//!
//! ```text
//! samm-bench-report [--out PATH] [--iters N] [--tests A,B,...]
//! ```
//!
//! Times every engine (serial, work-stealing parallel, and
//! prune-before-expand) over a fixed set of catalog tests and writes
//! one JSON report — `BENCH_enum.json` by default — with per-(test,
//! engine) wall microseconds (min and mean over `--iters` runs, min
//! being the noise-resistant number CI should trend) plus the verdict
//! pass flag, so a perf regression and a correctness regression both
//! surface as a diff in one artifact. The serving-path counterpart is
//! `samm-load --bench-json` (BENCH_serve.json); together they cover
//! the two performance planes EXPERIMENTS.md tracks.
//!
//! Exits non-zero when a test name is unknown, an enumeration fails,
//! or any verdict row mismatches — a bench report over a broken build
//! is worse than none.

use std::process::ExitCode;
use std::time::Instant;

use samm_core::enumerate::EnumConfig;
use samm_litmus::catalog::{self, CatalogEntry};
use samm_litmus::expect::{run_entry, run_entry_parallel, run_entry_pruned, EntryReport};
use samm_serve::json::Json;

/// Fast classics plus one paper figure: small enough that three
/// engines × `--iters` runs stay under a second, varied enough that
/// the engines' search shapes differ.
const DEFAULT_TESTS: [&str; 5] = ["SB", "MP", "LB", "IRIW", "fig4"];

fn usage() -> ! {
    eprintln!("usage: samm-bench-report [--out PATH] [--iters N] [--tests A,B,...]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut out = "BENCH_enum.json".to_owned();
    let mut iters: usize = 3;
    let mut tests: Vec<String> = DEFAULT_TESTS.iter().map(|t| (*t).to_owned()).collect();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("samm-bench-report: {flag} needs an argument");
                usage();
            })
        };
        match arg.as_str() {
            "--out" => out = take("--out"),
            "--iters" => {
                iters = take("--iters").parse().unwrap_or_else(|_| usage());
                if iters == 0 {
                    eprintln!("samm-bench-report: --iters must be at least 1");
                    usage();
                }
            }
            "--tests" => {
                tests = take("--tests")
                    .split(',')
                    .map(|t| t.trim().to_owned())
                    .filter(|t| !t.is_empty())
                    .collect();
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("samm-bench-report: unknown argument '{other}'");
                usage();
            }
        }
    }

    let all = catalog::all();
    let mut entries: Vec<&CatalogEntry> = Vec::new();
    for name in &tests {
        match all.iter().find(|e| &e.test.name == name) {
            Some(entry) => entries.push(entry),
            None => {
                eprintln!("samm-bench-report: unknown test '{name}'");
                return ExitCode::FAILURE;
            }
        }
    }

    type Engine = (
        &'static str,
        fn(&CatalogEntry, &EnumConfig) -> Result<EntryReport, samm_core::error::EnumError>,
    );
    let engines: [Engine; 3] = [
        ("serial", run_entry),
        ("parallel", run_entry_parallel),
        ("pruned", run_entry_pruned),
    ];

    let config = EnumConfig::default();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>6}",
        "test", "engine", "min us", "mean us", "pass"
    );
    for entry in &entries {
        for (engine, run) in engines {
            let mut min_us = f64::INFINITY;
            let mut sum_us = 0.0;
            let mut pass = true;
            for _ in 0..iters {
                let started = Instant::now();
                let report = match run(entry, &config) {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!(
                            "samm-bench-report: {}/{engine} failed: {e}",
                            entry.test.name
                        );
                        return ExitCode::FAILURE;
                    }
                };
                let us = started.elapsed().as_secs_f64() * 1e6;
                min_us = min_us.min(us);
                sum_us += us;
                pass &= report.all_pass();
            }
            let mean_us = sum_us / iters as f64;
            println!(
                "{:<12} {engine:<10} {min_us:>12.1} {mean_us:>12.1} {:>6}",
                entry.test.name,
                if pass { "yes" } else { "NO" },
            );
            if !pass {
                eprintln!(
                    "samm-bench-report: verdict mismatch in {}/{engine}",
                    entry.test.name
                );
                return ExitCode::FAILURE;
            }
            rows.push(Json::obj([
                ("test", Json::str(&entry.test.name)),
                ("engine", Json::str(engine)),
                ("wall_us_min", Json::num(min_us)),
                ("wall_us_mean", Json::num(mean_us)),
                ("pass", Json::Bool(pass)),
            ]));
        }
    }

    let report = Json::obj([
        ("bench", Json::str("enum")),
        ("iters", Json::num(iters as f64)),
        ("results", Json::Arr(rows)),
    ]);
    match std::fs::write(&out, format!("{report}\n")) {
        Ok(()) => {
            println!("bench report written to {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("samm-bench-report: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
