//! `samm-prunecheck` — differential correctness and regression gate for
//! the prune-before-expand enumeration engine.
//!
//! Two checks, both required for a zero exit:
//!
//! 1. **Equivalence.** Every catalog entry under every selectable model
//!    is enumerated fresh by the serial oracle and by
//!    [`samm_core::pruned::enumerate_pruned`]; outcome sets and
//!    `distinct_executions` must match exactly.
//! 2. **Speed.** The E20 workload (fresh enumeration of IRIW under the
//!    weak model, outcomes only) is timed for both engines; the
//!    median-of-runs pruned time must beat the documented E20 baseline
//!    (763 µs) by at least `--min-speedup` (default 10×). Gating against
//!    the recorded baseline rather than the same-run serial measurement
//!    keeps the bar fixed while shared-path optimizations also speed up
//!    the oracle.
//!
//! ```text
//! samm-prunecheck [--min-speedup X] [--iters N] [--quick]
//! ```
//!
//! `--quick` restricts the equivalence sweep to the paper figures
//! (for local runs); CI runs the full catalog.

use std::process::ExitCode;
use std::time::Instant;

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::policy::Policy;
use samm_core::pruned::{enumerate_pruned, enumerate_pruned_stats};
use samm_litmus::catalog;

/// E20 baseline from EXPERIMENTS.md: fresh serial enumeration of IRIW
/// under the weak model measured at 763 µs.
const E20_BASELINE_US: f64 = 763.0;

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    let mut min_speedup = 10.0f64;
    let mut iters = 60usize;
    let mut quick = false;
    let mut obs = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--obs" => obs = true,
            "--min-speedup" => {
                min_speedup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-speedup requires a number");
            }
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters requires a number");
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let config = EnumConfig::builder().keep_executions(false).build();
    let entries = if quick {
        catalog::paper_figures()
    } else {
        catalog::all()
    };

    // Check 1: behaviour-set equality across the catalog.
    let mut checked = 0usize;
    let mut failed = 0usize;
    for entry in &entries {
        for model in entry.models() {
            let policy = model.policy();
            let serial = enumerate(&entry.test.program, &policy, &config)
                .expect("serial enumeration succeeds");
            let pruned = enumerate_pruned(&entry.test.program, &policy, &config)
                .expect("pruned enumeration succeeds");
            checked += 1;
            if serial.outcomes != pruned.outcomes
                || serial.stats.distinct_executions != pruned.stats.distinct_executions
            {
                failed += 1;
                eprintln!(
                    "MISMATCH {} under {}: serial {}/{} vs pruned {}/{}",
                    entry.test.name,
                    model.name(),
                    serial.outcomes.len(),
                    serial.stats.distinct_executions,
                    pruned.outcomes.len(),
                    pruned.stats.distinct_executions,
                );
            }
        }
    }
    println!("equivalence: {checked} (entry, model) pairs checked, {failed} mismatches");

    // Check 2: E20 speedup (fresh IRIW under weak, outcomes only).
    let iriw = catalog::iriw();
    let weak = Policy::weak();
    let time = |f: &dyn Fn()| -> f64 {
        // One warmup, then median of timed runs.
        f();
        let samples: Vec<f64> = (0..iters)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        median_us(samples)
    };
    let serial_us = time(&|| {
        let r = enumerate(&iriw.test.program, &weak, &config).unwrap();
        assert!(!r.outcomes.is_empty());
    });
    let pruned_us = time(&|| {
        let r = enumerate_pruned(&iriw.test.program, &weak, &config).unwrap();
        assert!(!r.outcomes.is_empty());
    });
    let speedup = serial_us / pruned_us;
    let baseline_speedup = E20_BASELINE_US / pruned_us;
    let (_, pstats) = enumerate_pruned_stats(&iriw.test.program, &weak, &config).unwrap();
    println!(
        "E20 fresh IRIW/weak: serial {serial_us:.1} µs, pruned {pruned_us:.1} µs, \
         speedup {speedup:.1}× (documented baseline {E20_BASELINE_US} µs, \
         {baseline_speedup:.1}× vs baseline)"
    );
    println!("pruned counters: {}", pstats.to_json());
    if obs {
        // Micro-timings of the per-fork primitives, to steer optimization.
        let full = EnumConfig::builder().keep_executions(true).build();
        let execs = enumerate(&iriw.test.program, &weak, &full)
            .unwrap()
            .executions;
        let reps = 2000usize;
        let t0 = Instant::now();
        let mut sink = 0usize;
        for _ in 0..reps {
            for e in &execs {
                sink += e.clone().graph().len();
            }
        }
        let clone_ns = t0.elapsed().as_nanos() as f64 / (reps * execs.len()) as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            for e in &execs {
                sink += e.canonical_key().len();
            }
        }
        let key_ns = t1.elapsed().as_nanos() as f64 / (reps * execs.len()) as f64;
        println!(
            "micro: Behavior::clone {clone_ns:.0} ns, canonical_key {key_ns:.0} ns \
             (over {} complete IRIW executions, sink {sink})",
            execs.len()
        );
        let ocfg = EnumConfig::builder()
            .keep_executions(false)
            .observe(true)
            .build();
        let s = enumerate(&iriw.test.program, &weak, &ocfg).unwrap();
        let p = enumerate_pruned(&iriw.test.program, &weak, &ocfg).unwrap();
        println!("serial obs: {}", s.stats.obs.expect("observed"));
        println!(
            "serial explored/forks/deduped: {}/{}/{}",
            s.stats.explored, s.stats.forks, s.stats.deduped
        );
        println!("pruned obs: {}", p.stats.obs.expect("observed"));
        println!(
            "pruned explored/forks/deduped: {}/{}/{}",
            p.stats.explored, p.stats.forks, p.stats.deduped
        );
    }

    if failed > 0 {
        eprintln!("FAIL: {failed} behaviour-set mismatches");
        return ExitCode::FAILURE;
    }
    if baseline_speedup < min_speedup {
        eprintln!(
            "FAIL: {baseline_speedup:.1}× vs the {E20_BASELINE_US} µs E20 baseline, \
             below threshold {min_speedup}×"
        );
        return ExitCode::FAILURE;
    }
    println!("OK");
    ExitCode::SUCCESS
}
