//! # samm-oper — operational reference memory models
//!
//! Exhaustive explicit-state machines that serve as ground truth for the
//! graph framework of [`samm_core`]:
//!
//! * [`enumerate_sc`] — the operational view of Sequential Consistency
//!   (pick any thread's next instruction at each step);
//! * [`enumerate_tso`] — per-thread FIFO store buffers with forwarding
//!   (the standard SPARC TSO machine of the paper's section 6);
//! * [`enumerate_pso`] — per-address FIFO buffers (Partial Store Order).
//!
//! The cross-validation property — the graph framework's outcome set under
//! `Policy::sequential_consistency()` / `Policy::tso()` / `Policy::pso()`
//! equals the corresponding machine's outcome set — is checked in the
//! workspace integration tests and property tests.
//!
//! ```
//! use samm_oper::{enumerate_sc, enumerate_tso};
//! use samm_core::instr::{Instr, Program, ThreadProgram};
//! use samm_core::ids::Reg;
//!
//! let t = |a: u64, b: u64| ThreadProgram::new(vec![
//!     Instr::Store { addr: a.into(), val: 1u64.into() },
//!     Instr::Load { dst: Reg::new(0), addr: b.into() },
//! ]);
//! let sb = Program::new(vec![t(0, 1), t(1, 0)]);
//! let sc = enumerate_sc(&sb, 100_000).unwrap();
//! let tso = enumerate_tso(&sb, 100_000).unwrap();
//! assert!(sc.is_subset(&tso));
//! assert_eq!(tso.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod machine;

pub use machine::{
    enumerate_machine, enumerate_pso, enumerate_sc, enumerate_tso, BufferKind, OperError,
};
