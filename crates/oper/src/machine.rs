//! Explicit-state operational machines: interleaving SC and store-buffer
//! TSO/PSO.
//!
//! These are the textbook *operational* definitions the paper's graph
//! framework is validated against:
//!
//! * **SC** — "choosing the next instruction from one of the running
//!   threads at each step" (paper section 1);
//! * **TSO** — per-thread FIFO store buffers with load forwarding; a fence
//!   waits for the buffer to drain;
//! * **PSO** — per-address FIFO order in the buffer: the oldest entry *per
//!   address* may drain, so stores to different addresses reorder.
//!
//! Enumeration explores every interleaving (and every drain schedule) with
//! state memoization, producing the exact outcome set. The integration
//! tests assert these sets coincide with the graph framework's — the
//! operational/axiomatic correspondence that makes the reproduction
//! credible.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::error::Error as StdError;
use std::fmt;

use samm_core::ids::{Addr, Value};
use samm_core::instr::{Instr, Operand, Program, ThreadProgram};
use samm_core::outcome::{Outcome, OutcomeSet};

/// Which buffering discipline the machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// No buffers: stores hit memory atomically (SC).
    None,
    /// One FIFO buffer per thread (TSO).
    Fifo,
    /// Per-address FIFO: the oldest entry of each address may drain (PSO).
    PerAddress,
}

/// Errors from operational enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OperError {
    /// The explored state count exceeded the limit (the program probably
    /// loops unboundedly).
    StateLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for OperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperError::StateLimit { limit } => {
                write!(f, "operational enumeration exceeded {limit} states")
            }
        }
    }
}

impl StdError for OperError {}

/// One thread's architectural state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CoreState {
    pc: usize,
    regs: Vec<Value>,
    halted: bool,
}

/// A whole-machine state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MachState {
    memory: BTreeMap<Addr, Value>,
    cores: Vec<CoreState>,
    /// Pending stores per thread, oldest first. Empty for SC.
    buffers: Vec<VecDeque<(Addr, Value)>>,
}

impl MachState {
    fn initial(program: &Program) -> Self {
        MachState {
            memory: program.init_entries().collect(),
            cores: program
                .threads()
                .iter()
                .map(|t| CoreState {
                    pc: 0,
                    regs: vec![Value::ZERO; t.reg_count()],
                    halted: false,
                })
                .collect(),
            buffers: vec![VecDeque::new(); program.threads().len()],
        }
    }

    fn read_mem(&self, addr: Addr) -> Value {
        self.memory.get(&addr).copied().unwrap_or(Value::ZERO)
    }

    /// The value a load on `thread` observes: newest same-address buffer
    /// entry (forwarding) or memory.
    fn read(&self, thread: usize, addr: Addr) -> Value {
        self.buffers[thread]
            .iter()
            .rev()
            .find(|&&(a, _)| a == addr)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| self.read_mem(addr))
    }

    fn operand(&self, thread: usize, op: Operand) -> Value {
        match op {
            Operand::Imm(v) => v,
            Operand::Reg(r) => self.cores[thread]
                .regs
                .get(r.index())
                .copied()
                .unwrap_or(Value::ZERO),
        }
    }

    fn done(&self) -> bool {
        self.cores.iter().all(|c| c.halted) && self.buffers.iter().all(VecDeque::is_empty)
    }

    fn outcome(&self) -> Outcome {
        Outcome::new(self.cores.iter().map(|c| c.regs.clone()).collect())
    }

    /// Executes the next instruction of `thread`, if currently possible.
    /// Returns the successor state, or `None` when the thread is blocked
    /// (halted, or a fence with a non-empty buffer).
    fn step_instr(
        &self,
        program: &ThreadProgram,
        thread: usize,
        kind: BufferKind,
    ) -> Option<MachState> {
        let core = &self.cores[thread];
        if core.halted {
            return None;
        }
        let mut next = self.clone();
        {
            let core = &mut next.cores[thread];
            if core.pc >= program.instrs().len() {
                core.halted = true;
                return Some(next);
            }
        }
        let instr = program.instrs()[self.cores[thread].pc];
        let set_reg = |state: &mut MachState, r: samm_core::ids::Reg, v: Value| {
            let regs = &mut state.cores[thread].regs;
            if r.index() >= regs.len() {
                regs.resize(r.index() + 1, Value::ZERO);
            }
            regs[r.index()] = v;
        };
        match instr {
            Instr::Mov { dst, src } => {
                let v = self.operand(thread, src);
                set_reg(&mut next, dst, v);
                next.cores[thread].pc += 1;
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                let v = op.apply(self.operand(thread, lhs), self.operand(thread, rhs));
                set_reg(&mut next, dst, v);
                next.cores[thread].pc += 1;
            }
            Instr::Load { dst, addr } => {
                let a = Addr::from(self.operand(thread, addr));
                let v = self.read(thread, a);
                set_reg(&mut next, dst, v);
                next.cores[thread].pc += 1;
            }
            Instr::Store { addr, val } => {
                let a = Addr::from(self.operand(thread, addr));
                let v = self.operand(thread, val);
                match kind {
                    BufferKind::None => {
                        next.memory.insert(a, v);
                    }
                    BufferKind::Fifo | BufferKind::PerAddress => {
                        next.buffers[thread].push_back((a, v));
                    }
                }
                next.cores[thread].pc += 1;
            }
            Instr::Rmw { dst, addr, op, src } => {
                // Atomics act on memory directly. Under TSO (FIFO buffer)
                // that requires the whole buffer to drain — the atomic's
                // store may not pass earlier stores. Under PSO only the
                // *same-address* entries must drain first (per-address
                // order), mirroring the graph model's SameAddr constraint
                // for (Store, RMW) pairs.
                let a = Addr::from(self.operand(thread, addr));
                let blocked = match kind {
                    BufferKind::None => false,
                    BufferKind::Fifo => !self.buffers[thread].is_empty(),
                    BufferKind::PerAddress => self.buffers[thread].iter().any(|&(ba, _)| ba == a),
                };
                if blocked {
                    return None;
                }
                let old = self.read_mem(a);
                let new = match op {
                    samm_core::instr::RmwOp::Swap => Some(self.operand(thread, src)),
                    samm_core::instr::RmwOp::FetchAdd => Some(Value::new(
                        old.raw().wrapping_add(self.operand(thread, src).raw()),
                    )),
                    samm_core::instr::RmwOp::Cas { expect } => {
                        if old == self.operand(thread, expect) {
                            Some(self.operand(thread, src))
                        } else {
                            None
                        }
                    }
                };
                if let Some(v) = new {
                    next.memory.insert(a, v);
                }
                set_reg(&mut next, dst, old);
                next.cores[thread].pc += 1;
            }
            Instr::Fence => {
                if !self.buffers[thread].is_empty() {
                    return None;
                }
                next.cores[thread].pc += 1;
            }
            Instr::BranchNz { cond, target } => {
                let taken = self.operand(thread, cond).is_truthy();
                next.cores[thread].pc = if taken {
                    target
                } else {
                    self.cores[thread].pc + 1
                };
            }
            Instr::Jump { target } => {
                next.cores[thread].pc = target;
            }
            Instr::Halt => {
                next.cores[thread].halted = true;
            }
        }
        Some(next)
    }

    /// Drain successors for `thread`'s buffer under the given discipline.
    fn drains(&self, thread: usize, kind: BufferKind) -> Vec<MachState> {
        let buffer = &self.buffers[thread];
        if buffer.is_empty() {
            return Vec::new();
        }
        let drainable: Vec<usize> = match kind {
            BufferKind::None => Vec::new(),
            BufferKind::Fifo => vec![0],
            BufferKind::PerAddress => {
                // The first entry of each distinct address may drain.
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for (i, &(a, _)) in buffer.iter().enumerate() {
                    if !seen.contains(&a) {
                        seen.push(a);
                        out.push(i);
                    }
                }
                out
            }
        };
        drainable
            .into_iter()
            .map(|i| {
                let mut next = self.clone();
                let (a, v) = next.buffers[thread].remove(i).expect("index in range");
                next.memory.insert(a, v);
                next
            })
            .collect()
    }
}

/// Exhaustively enumerates the outcome set of `program` on the machine
/// with buffering discipline `kind`, exploring at most `state_limit`
/// distinct states.
///
/// # Errors
///
/// [`OperError::StateLimit`] when the state space exceeds the limit.
pub fn enumerate_machine(
    program: &Program,
    kind: BufferKind,
    state_limit: usize,
) -> Result<OutcomeSet, OperError> {
    let mut outcomes = OutcomeSet::new();
    let mut seen: HashSet<MachState> = HashSet::new();
    let mut frontier = vec![MachState::initial(program)];
    seen.insert(frontier[0].clone());

    while let Some(state) = frontier.pop() {
        if seen.len() > state_limit {
            return Err(OperError::StateLimit { limit: state_limit });
        }
        if state.done() {
            outcomes.insert(state.outcome());
            continue;
        }
        for thread in 0..state.cores.len() {
            if let Some(next) = state.step_instr(&program.threads()[thread], thread, kind) {
                if seen.insert(next.clone()) {
                    frontier.push(next);
                }
            }
            for next in state.drains(thread, kind) {
                if seen.insert(next.clone()) {
                    frontier.push(next);
                }
            }
        }
    }
    Ok(outcomes)
}

/// All outcomes of `program` under interleaving Sequential Consistency.
///
/// # Errors
///
/// See [`enumerate_machine`].
pub fn enumerate_sc(program: &Program, state_limit: usize) -> Result<OutcomeSet, OperError> {
    enumerate_machine(program, BufferKind::None, state_limit)
}

/// All outcomes of `program` under store-buffer TSO.
///
/// # Errors
///
/// See [`enumerate_machine`].
pub fn enumerate_tso(program: &Program, state_limit: usize) -> Result<OutcomeSet, OperError> {
    enumerate_machine(program, BufferKind::Fifo, state_limit)
}

/// All outcomes of `program` under per-address store-buffer PSO.
///
/// # Errors
///
/// See [`enumerate_machine`].
pub fn enumerate_pso(program: &Program, state_limit: usize) -> Result<OutcomeSet, OperError> {
    enumerate_machine(program, BufferKind::PerAddress, state_limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::ids::Reg;
    use samm_core::instr::ThreadProgram;

    const X: u64 = 0;
    const Y: u64 = 1;
    const LIMIT: usize = 1_000_000;

    fn st(a: u64, v: u64) -> Instr {
        Instr::Store {
            addr: a.into(),
            val: v.into(),
        }
    }

    fn ld(r: usize, a: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(r),
            addr: a.into(),
        }
    }

    fn sb() -> Program {
        Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), ld(0, Y)]),
            ThreadProgram::new(vec![st(Y, 1), ld(0, X)]),
        ])
    }

    fn outcome2(a: u64, b: u64) -> Outcome {
        Outcome::new(vec![vec![Value::new(a)], vec![Value::new(b)]])
    }

    #[test]
    fn sc_forbids_sb_zero_zero() {
        let outcomes = enumerate_sc(&sb(), LIMIT).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(!outcomes.contains(&outcome2(0, 0)));
    }

    #[test]
    fn tso_allows_sb_zero_zero() {
        let outcomes = enumerate_tso(&sb(), LIMIT).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.contains(&outcome2(0, 0)));
    }

    #[test]
    fn tso_forwards_from_the_buffer() {
        // S x,1 ; r0 = L x with the store still buffered: r0 must be 1.
        let prog = Program::new(vec![ThreadProgram::new(vec![st(X, 1), ld(0, X)])]);
        let outcomes = enumerate_tso(&prog, LIMIT).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            outcomes.iter().next().unwrap().reg(0, Reg::new(0)),
            Value::new(1)
        );
    }

    #[test]
    fn tso_keeps_mp_intact_but_pso_breaks_it() {
        let mp = Program::new(vec![
            ThreadProgram::new(vec![st(X, 42), st(Y, 1)]),
            ThreadProgram::new(vec![ld(0, Y), ld(1, X)]),
        ]);
        let stale = Outcome::new(vec![vec![], vec![Value::new(1), Value::ZERO]]);
        let tso = enumerate_tso(&mp, LIMIT).unwrap();
        assert!(!tso.contains(&stale), "TSO preserves store order");
        let pso = enumerate_pso(&mp, LIMIT).unwrap();
        assert!(
            pso.contains(&stale),
            "PSO reorders stores to different addresses"
        );
    }

    #[test]
    fn pso_preserves_same_address_store_order() {
        // S x,1 ; S x,2 — a remote reader may never see 2 then 1... as a
        // single final value check: after both drain, memory must be 2.
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), st(X, 2)]),
            ThreadProgram::new(vec![ld(0, X), ld(1, X)]),
        ]);
        let pso = enumerate_pso(&prog, LIMIT).unwrap();
        // Coherence: r0=2 then r1=1 must be impossible.
        assert!(!pso
            .any(|o| o.reg(1, Reg::new(0)) == Value::new(2)
                && o.reg(1, Reg::new(1)) == Value::new(1)));
    }

    #[test]
    fn fences_drain_buffers() {
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), Instr::Fence, ld(0, Y)]),
            ThreadProgram::new(vec![st(Y, 1), Instr::Fence, ld(0, X)]),
        ]);
        let tso = enumerate_tso(&prog, LIMIT).unwrap();
        assert!(!tso.contains(&outcome2(0, 0)), "fenced SB is SC-like");
        assert_eq!(tso.len(), 3);
    }

    #[test]
    fn figure_10_outcome_is_tso_allowed() {
        // Thread A: S x,1; S x,2; S z,3; L z; L y.
        // Thread B: S y,5; S y,7; S z,8; L z; L x.
        let z = 2u64;
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), st(X, 2), st(z, 3), ld(0, z), ld(1, Y)]),
            ThreadProgram::new(vec![st(Y, 5), st(Y, 7), st(z, 8), ld(0, z), ld(1, X)]),
        ]);
        let tso = enumerate_tso(&prog, LIMIT).unwrap();
        let target = Outcome::new(vec![
            vec![Value::new(3), Value::new(5)],
            vec![Value::new(8), Value::new(1)],
        ]);
        assert!(
            tso.contains(&target),
            "the paper's Figure 10 execution obeys TSO"
        );
        let sc = enumerate_sc(&prog, LIMIT).unwrap();
        assert!(
            !sc.contains(&target),
            "but it is not sequentially consistent"
        );
    }

    #[test]
    fn branches_and_computes_execute() {
        use samm_core::instr::BinOp;
        let prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::Mov {
                dst: Reg::new(0),
                src: 5u64.into(),
            },
            Instr::Binop {
                dst: Reg::new(1),
                op: BinOp::Eq,
                lhs: Operand::Reg(Reg::new(0)),
                rhs: 5u64.into(),
            },
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(1)),
                target: 4,
            },
            st(X, 9),
        ])]);
        for kind in [BufferKind::None, BufferKind::Fifo, BufferKind::PerAddress] {
            let outcomes = enumerate_machine(&prog, kind, LIMIT).unwrap();
            assert_eq!(outcomes.len(), 1);
        }
    }

    #[test]
    fn state_limit_catches_infinite_loops() {
        // A loop that keeps writing increasing values diverges.
        use samm_core::instr::BinOp;
        let prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::Binop {
                dst: Reg::new(0),
                op: BinOp::Add,
                lhs: Operand::Reg(Reg::new(0)),
                rhs: 1u64.into(),
            },
            Instr::Jump { target: 0 },
        ])]);
        assert_eq!(
            enumerate_sc(&prog, 100),
            Err(OperError::StateLimit { limit: 100 })
        );
    }

    #[test]
    fn cas_mutual_exclusion_holds_on_all_machines() {
        use samm_core::instr::RmwOp;
        let cas_thread = || {
            ThreadProgram::new(vec![Instr::Rmw {
                dst: Reg::new(0),
                addr: X.into(),
                op: RmwOp::Cas {
                    expect: 0u64.into(),
                },
                src: 1u64.into(),
            }])
        };
        let prog = Program::new(vec![cas_thread(), cas_thread()]);
        for kind in [BufferKind::None, BufferKind::Fifo, BufferKind::PerAddress] {
            let outcomes = enumerate_machine(&prog, kind, LIMIT).unwrap();
            assert_eq!(outcomes.len(), 2, "{kind:?}");
            assert!(!outcomes.contains(&outcome2(0, 0)), "{kind:?}: both won");
        }
    }

    #[test]
    fn tso_atomic_waits_for_the_whole_buffer() {
        use samm_core::instr::RmwOp;
        // S y,1 (buffered); swap x — under TSO the swap drains y first, so
        // a remote observer that saw the swap's store must also see y.
        let prog = Program::new(vec![
            ThreadProgram::new(vec![
                st(Y, 1),
                Instr::Rmw {
                    dst: Reg::new(0),
                    addr: X.into(),
                    op: RmwOp::Swap,
                    src: 7u64.into(),
                },
            ]),
            ThreadProgram::new(vec![ld(0, X), ld(1, Y)]),
        ]);
        let tso = enumerate_tso(&prog, LIMIT).unwrap();
        assert!(
            !tso.any(
                |o| o.reg(1, Reg::new(0)) == Value::new(7) && o.reg(1, Reg::new(1)) == Value::ZERO
            ),
            "TSO: seeing the atomic implies seeing the earlier store"
        );
        // PSO drains per address: the y store may still be pending.
        let pso = enumerate_pso(&prog, LIMIT).unwrap();
        assert!(
            pso.any(
                |o| o.reg(1, Reg::new(0)) == Value::new(7) && o.reg(1, Reg::new(1)) == Value::ZERO
            ),
            "PSO: different-address stores still reorder around atomics"
        );
    }

    #[test]
    fn failed_cas_writes_nothing_on_machines() {
        use samm_core::instr::RmwOp;
        let prog = Program::new(vec![ThreadProgram::new(vec![
            st(X, 5),
            Instr::Rmw {
                dst: Reg::new(0),
                addr: X.into(),
                op: RmwOp::Cas {
                    expect: 9u64.into(),
                },
                src: 1u64.into(),
            },
            ld(1, X),
        ])]);
        for kind in [BufferKind::None, BufferKind::Fifo, BufferKind::PerAddress] {
            let outcomes = enumerate_machine(&prog, kind, LIMIT).unwrap();
            assert_eq!(outcomes.len(), 1);
            let o = outcomes.iter().next().unwrap();
            assert_eq!(o.reg(0, Reg::new(0)), Value::new(5), "old value returned");
            assert_eq!(o.reg(0, Reg::new(1)), Value::new(5), "no store happened");
        }
    }

    #[test]
    fn sc_and_tso_agree_on_single_threaded_code() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            st(X, 1),
            ld(0, X),
            st(X, 2),
            ld(1, X),
        ])]);
        let sc = enumerate_sc(&prog, LIMIT).unwrap();
        let tso = enumerate_tso(&prog, LIMIT).unwrap();
        let pso = enumerate_pso(&prog, LIMIT).unwrap();
        assert_eq!(sc, tso);
        assert_eq!(sc, pso);
        assert_eq!(sc.len(), 1);
    }

    #[test]
    fn initial_memory_is_respected() {
        let mut prog = Program::new(vec![ThreadProgram::new(vec![ld(0, X)])]);
        prog.set_init(Addr::new(X), Value::new(77));
        let sc = enumerate_sc(&prog, LIMIT).unwrap();
        assert_eq!(
            sc.iter().next().unwrap().reg(0, Reg::new(0)),
            Value::new(77)
        );
    }
}
