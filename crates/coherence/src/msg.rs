//! Protocol messages for the MSI directory protocol.
//!
//! The protocol is the textbook ownership-based design the paper sketches
//! in section 4.2: "a Store must obtain ownership of the data — in effect
//! ordering this Store after the Stores of any prior owners... a Store
//! operation must also revoke any cached copies of the line... a Load
//! operation must obtain a copy of the data read from the current owner."
//!
//! Data messages carry, besides the value, the *id of the store that last
//! wrote it* — the simulator's way of recording `source(L)` so that runs
//! can be checked against Store Atomicity.

use samm_core::ids::{Addr, Value};

/// Globally unique id of a completed store event (or `None` for the
/// initial memory image).
pub type WriterId = Option<usize>;

/// A protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Core requests a read-only copy.
    GetS {
        /// Requesting core.
        core: usize,
        /// Line address.
        addr: Addr,
    },
    /// Core requests ownership (exclusive, writable).
    GetM {
        /// Requesting core.
        core: usize,
        /// Line address.
        addr: Addr,
    },
    /// Directory forwards a read request to the current owner.
    FwdGetS {
        /// The core waiting for data.
        requester: usize,
        /// Line address.
        addr: Addr,
    },
    /// Directory forwards an ownership request to the current owner.
    FwdGetM {
        /// The core waiting for data + ownership.
        requester: usize,
        /// Line address.
        addr: Addr,
    },
    /// Directory tells a sharer to drop its copy and ack the requester.
    Inv {
        /// The core collecting invalidation acks.
        requester: usize,
        /// Line address.
        addr: Addr,
    },
    /// A sharer acknowledges an invalidation to the requester.
    InvAck {
        /// Line address.
        addr: Addr,
    },
    /// Data delivery (from directory or owner).
    Data {
        /// Line address.
        addr: Addr,
        /// Current line value.
        value: Value,
        /// Store event that produced the value.
        writer: WriterId,
        /// Invalidation acks the requester must collect before completing
        /// a store (zero for loads and uncontended stores).
        acks: usize,
        /// Grant the line in the Exclusive state (a `GetS` that found the
        /// line uncached — the MESI E optimization).
        exclusive: bool,
    },
    /// Owner writes the line back to the directory on an M→S downgrade.
    WbData {
        /// Line address.
        addr: Addr,
        /// Line value.
        value: Value,
        /// Store event that produced the value.
        writer: WriterId,
    },
    /// Requester signals transaction completion; the directory unblocks
    /// the line.
    Unblock {
        /// The completing core.
        core: usize,
        /// Line address.
        addr: Addr,
    },
}

impl Msg {
    /// The line address the message concerns.
    pub fn addr(&self) -> Addr {
        match *self {
            Msg::GetS { addr, .. }
            | Msg::GetM { addr, .. }
            | Msg::FwdGetS { addr, .. }
            | Msg::FwdGetM { addr, .. }
            | Msg::Inv { addr, .. }
            | Msg::InvAck { addr }
            | Msg::Data { addr, .. }
            | Msg::WbData { addr, .. }
            | Msg::Unblock { addr, .. } => addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_is_extracted_from_every_variant() {
        let a = Addr::new(7);
        let msgs = [
            Msg::GetS { core: 0, addr: a },
            Msg::GetM { core: 0, addr: a },
            Msg::FwdGetS {
                requester: 1,
                addr: a,
            },
            Msg::FwdGetM {
                requester: 1,
                addr: a,
            },
            Msg::Inv {
                requester: 1,
                addr: a,
            },
            Msg::InvAck { addr: a },
            Msg::Data {
                addr: a,
                value: Value::ZERO,
                writer: None,
                acks: 0,
                exclusive: false,
            },
            Msg::WbData {
                addr: a,
                value: Value::ZERO,
                writer: None,
            },
            Msg::Unblock { core: 0, addr: a },
        ];
        for m in msgs {
            assert_eq!(m.addr(), a);
        }
    }
}
