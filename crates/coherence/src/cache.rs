//! Private L1 cache with MESI line states.
//!
//! Caches are unbounded (litmus working sets are a handful of lines), so
//! there are no capacity evictions — lines change state only through the
//! protocol. Each line tracks the id of the store event that produced its
//! data, which is how the simulator reconstructs `source(L)` for the
//! Store Atomicity check.

use std::collections::BTreeMap;

use samm_core::ids::{Addr, Value};

use crate::msg::WriterId;

/// Stable MESI states of a cached line (Invalid lines are simply absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Read-only shared copy.
    Shared,
    /// Sole clean copy: readable, and writable after a *silent* upgrade to
    /// Modified — the E state's entire point is that the upgrade needs no
    /// protocol traffic.
    Exclusive,
    /// Exclusive owned, possibly dirty.
    Modified,
}

/// A cached line: state plus the data and its producing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// MESI state (absent lines are Invalid).
    pub state: LineState,
    /// Line contents.
    pub value: Value,
    /// Store event that wrote the value (`None` = initial memory).
    pub writer: WriterId,
}

/// A private L1 cache.
#[derive(Debug, Clone, Default)]
pub struct L1Cache {
    lines: BTreeMap<Addr, Line>,
}

impl L1Cache {
    /// Creates an empty cache (all lines Invalid).
    pub fn new() -> Self {
        L1Cache::default()
    }

    /// The line for `addr`, if present (Invalid lines are absent).
    pub fn line(&self, addr: Addr) -> Option<&Line> {
        self.lines.get(&addr)
    }

    /// Whether a load can hit: any valid copy.
    pub fn can_read(&self, addr: Addr) -> bool {
        self.lines.contains_key(&addr)
    }

    /// Whether a store can hit: requires ownership (Exclusive lines count —
    /// they upgrade silently on write).
    pub fn can_write(&self, addr: Addr) -> bool {
        matches!(
            self.lines.get(&addr),
            Some(Line {
                state: LineState::Modified | LineState::Exclusive,
                ..
            })
        )
    }

    /// Reads a valid line.
    ///
    /// # Panics
    ///
    /// Panics when the line is Invalid — callers must check
    /// [`L1Cache::can_read`] first.
    pub fn read(&self, addr: Addr) -> (Value, WriterId) {
        let line = self.lines.get(&addr).expect("read of invalid line");
        (line.value, line.writer)
    }

    /// Writes an owned line; an Exclusive line silently upgrades to
    /// Modified.
    ///
    /// # Panics
    ///
    /// Panics when the line is Shared or Invalid.
    pub fn write(&mut self, addr: Addr, value: Value, writer: WriterId) {
        let line = self.lines.get_mut(&addr).expect("write of invalid line");
        assert!(
            matches!(line.state, LineState::Modified | LineState::Exclusive),
            "write requires ownership"
        );
        line.state = LineState::Modified;
        line.value = value;
        line.writer = writer;
    }

    /// Installs a line in the given state (protocol fill).
    pub fn install(&mut self, addr: Addr, state: LineState, value: Value, writer: WriterId) {
        self.lines.insert(
            addr,
            Line {
                state,
                value,
                writer,
            },
        );
    }

    /// Downgrades an owned line to Shared (M→S on FwdGetS), returning its
    /// data for the writeback.
    ///
    /// # Panics
    ///
    /// Panics when the line is not Modified.
    pub fn downgrade(&mut self, addr: Addr) -> (Value, WriterId) {
        let line = self
            .lines
            .get_mut(&addr)
            .expect("downgrade of invalid line");
        assert!(matches!(
            line.state,
            LineState::Modified | LineState::Exclusive
        ));
        line.state = LineState::Shared;
        (line.value, line.writer)
    }

    /// Drops a line (invalidation). Returns the data if the line was
    /// owned (the FwdGetM case, where data travels to the requester).
    pub fn invalidate(&mut self, addr: Addr) -> Option<(Value, WriterId)> {
        match self.lines.remove(&addr) {
            Some(Line {
                state: LineState::Modified | LineState::Exclusive,
                value,
                writer,
            }) => Some((value, writer)),
            _ => None,
        }
    }

    /// Number of valid lines (for stats).
    pub fn valid_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Addr = Addr::new(1);

    #[test]
    fn invalid_lines_do_not_hit() {
        let c = L1Cache::new();
        assert!(!c.can_read(A));
        assert!(!c.can_write(A));
        assert!(c.line(A).is_none());
    }

    #[test]
    fn shared_lines_read_but_do_not_write() {
        let mut c = L1Cache::new();
        c.install(A, LineState::Shared, Value::new(5), Some(3));
        assert!(c.can_read(A));
        assert!(!c.can_write(A));
        assert_eq!(c.read(A), (Value::new(5), Some(3)));
    }

    #[test]
    fn modified_lines_write_and_track_writer() {
        let mut c = L1Cache::new();
        c.install(A, LineState::Modified, Value::new(5), None);
        assert!(c.can_write(A));
        c.write(A, Value::new(9), Some(11));
        assert_eq!(c.read(A), (Value::new(9), Some(11)));
    }

    #[test]
    fn downgrade_keeps_data_and_shares() {
        let mut c = L1Cache::new();
        c.install(A, LineState::Modified, Value::new(9), Some(1));
        let (v, w) = c.downgrade(A);
        assert_eq!((v, w), (Value::new(9), Some(1)));
        assert!(c.can_read(A));
        assert!(!c.can_write(A));
    }

    #[test]
    fn invalidate_returns_owned_data_only() {
        let mut c = L1Cache::new();
        c.install(A, LineState::Shared, Value::new(2), None);
        assert_eq!(c.invalidate(A), None);
        assert!(!c.can_read(A));
        c.install(A, LineState::Modified, Value::new(3), Some(7));
        assert_eq!(c.invalidate(A), Some((Value::new(3), Some(7))));
    }

    #[test]
    #[should_panic(expected = "ownership")]
    fn writing_a_shared_line_panics() {
        let mut c = L1Cache::new();
        c.install(A, LineState::Shared, Value::ZERO, None);
        c.write(A, Value::new(1), Some(0));
    }
}
