//! # samm-coherence — a MESI directory protocol checked against Store
//! Atomicity
//!
//! Paper section 4.2: "We can view a cache coherence protocol as a
//! conservative approximation to Store Atomicity. Ordering constraints are
//! inserted eagerly, imposing a well-defined order for memory operations
//! even when the exact order is not observed by any thread."
//!
//! This crate builds that claim into an executable experiment. It
//! implements an ownership-based MESI directory cache-coherence system
//! (with the Exclusive state and silent E→M upgrade):
//! in-order cores with private L1 caches, a directory tracking sharers and
//! owners, and an interconnect with per-link queues and randomized delivery
//! delays. Running a litmus program through the simulator yields a trace of
//! loads and stores annotated with *which store's data* every load
//! returned; [`trace`] converts the trace into an execution graph of
//! [`samm_core`] and checks it against Store Atomicity — the protocol run
//! must never produce a cycle, and (with SC cores) its outcome must be a
//! sequentially consistent outcome.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod msg;
pub mod system;
pub mod trace;

pub use system::{CoherentSystem, Fault, SystemConfig};
pub use trace::{
    check_trace, check_trace_under, trace_to_execution, trace_to_execution_under, MemEvent,
    TraceReport,
};
