//! Trace checking: protocol runs versus Store Atomicity.
//!
//! Paper section 4.2 argues that a coherence protocol is a conservative
//! approximation of Store Atomicity, and section 8 proposes graph-based
//! tools (à la TSOtool) that validate observed executions "without the
//! need to compute serializations". This module is that tool for the MSI
//! simulator: a run's trace — per-core program-ordered loads and stores,
//! each load annotated with the store whose data it returned — is rebuilt
//! as an execution graph and closed under the Store Atomicity rules. A
//! cycle would mean the protocol produced a non-serializable execution.

use std::collections::BTreeMap;

use samm_core::atomicity;
use samm_core::error::CycleError;
use samm_core::graph::{EdgeKind, ExecutionGraph};
use samm_core::ids::{Addr, NodeId, ThreadId, Value};

use crate::msg::WriterId;

/// One completed memory operation observed in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A load that returned `value`, produced by store `writer`.
    Load {
        /// Core that loaded.
        core: usize,
        /// Address read.
        addr: Addr,
        /// Value observed.
        value: Value,
        /// Producing store (`None` = initial memory).
        writer: WriterId,
    },
    /// A store of `value`.
    Store {
        /// Core that stored.
        core: usize,
        /// Address written.
        addr: Addr,
        /// Value written.
        value: Value,
        /// Globally unique store id.
        id: usize,
    },
    /// An atomic read-modify-write: loaded `loaded` (produced by `writer`)
    /// and, when `stored` is present, wrote `(value, id)` atomically.
    Rmw {
        /// Core that executed the atomic.
        core: usize,
        /// Address operated on.
        addr: Addr,
        /// Old value observed.
        loaded: Value,
        /// Store that produced the old value.
        writer: WriterId,
        /// `(new value, store id)` when the operation wrote (a failed CAS
        /// does not).
        stored: Option<(Value, usize)>,
    },
}

/// Result of checking a trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Whether the trace satisfies Store Atomicity (always expected).
    pub consistent: bool,
    /// Store Atomicity edges the closure had to add.
    pub atomicity_edges: usize,
    /// Number of memory operations in the trace.
    pub operations: usize,
    /// The offending edge when inconsistent.
    pub violation: Option<CycleError>,
}

/// Rebuilds an execution graph from a trace.
///
/// Per-core events become nodes ordered by full program order (the
/// simulated cores are in-order and strongly ordered, i.e. SC cores);
/// loads observe the store their data message named; unwritten addresses
/// observe lazily created initial stores.
///
/// # Errors
///
/// Returns [`CycleError`] if even the raw observation edges contradict
/// program order (cannot happen for traces from [`crate::system`]).
pub fn trace_to_execution(
    events: &[MemEvent],
    initial_value: impl Fn(Addr) -> Value,
) -> Result<ExecutionGraph, CycleError> {
    trace_to_execution_impl(events, initial_value, true)
}

/// Shared builder: `program_order` controls whether per-core consecutive
/// `≺` edges are inserted (SC cores) or left to the caller (policy-aware
/// checking).
fn trace_to_execution_impl(
    events: &[MemEvent],
    initial_value: impl Fn(Addr) -> Value,
    program_order: bool,
) -> Result<ExecutionGraph, CycleError> {
    let mut graph = ExecutionGraph::new();
    let mut store_nodes: BTreeMap<usize, NodeId> = BTreeMap::new();
    let mut init_nodes: BTreeMap<Addr, NodeId> = BTreeMap::new();
    let mut last_in_core: BTreeMap<usize, NodeId> = BTreeMap::new();
    let mut index_in_core: BTreeMap<usize, u32> = BTreeMap::new();
    let mut loads: Vec<(NodeId, WriterId, Addr, bool)> = Vec::new();

    for event in events {
        let core = match *event {
            MemEvent::Load { core, .. }
            | MemEvent::Store { core, .. }
            | MemEvent::Rmw { core, .. } => core,
        };
        let idx = index_in_core.entry(core).or_insert(0);
        let node = match *event {
            MemEvent::Load { addr, writer, .. } => {
                let id = graph.add_load_event(ThreadId::new(core), *idx, addr);
                loads.push((id, writer, addr, false));
                id
            }
            MemEvent::Store {
                addr, value, id, ..
            } => {
                let node = graph.add_store_event(ThreadId::new(core), *idx, addr, value);
                store_nodes.insert(id, node);
                node
            }
            MemEvent::Rmw {
                addr,
                writer,
                stored,
                ..
            } => {
                let node =
                    graph.add_rmw_event(ThreadId::new(core), *idx, addr, stored.map(|(v, _)| v));
                loads.push((node, writer, addr, true));
                if let Some((_, id)) = stored {
                    store_nodes.insert(id, node);
                }
                node
            }
        };
        *idx += 1;
        if let Some(prev) = last_in_core.insert(core, node) {
            if program_order {
                graph.add_edge(prev, node, EdgeKind::Program)?;
            }
        }
    }

    // Initial stores for every address that appears, ordered before all
    // other operations.
    let addrs: Vec<Addr> = graph
        .memory_ops()
        .filter_map(|id| graph.node(id).addr())
        .collect();
    for addr in addrs {
        if init_nodes.contains_key(&addr) {
            continue;
        }
        let init = graph.add_init_store(0, addr, initial_value(addr));
        init_nodes.insert(addr, init);
        let others: Vec<NodeId> = graph
            .iter()
            .filter(|(id, n)| *id != init && !n.is_init())
            .map(|(id, _)| id)
            .collect();
        for other in others {
            graph.add_edge(init, other, EdgeKind::Init)?;
        }
    }

    // Observation edges.
    for (load, writer, addr, is_rmw) in loads {
        let source = match writer {
            Some(id) => store_nodes[&id],
            None => init_nodes[&addr],
        };
        if is_rmw {
            graph.observe_recorded(load, source)?;
        } else {
            graph.observe(load, source)?;
        }
    }
    Ok(graph)
}

/// Rebuilds an execution graph from a trace, with per-core local ordering
/// taken from `policy`'s reordering table instead of full program order.
///
/// This generalizes [`trace_to_execution`] into a TSOtool-style conformance
/// checker for arbitrary models: an observed trace is legal under `policy`
/// when the policy's `≺` edges plus the observations close under Store
/// Atomicity without a cycle. Address-sensitive entries (`x ≠ y`) insert an
/// edge exactly when the two events' addresses coincide; `Bypass` entries
/// are treated leniently (no edge — the trace checker cannot distinguish a
/// bypassed read, so it under-approximates TSO slightly).
///
/// # Errors
///
/// Returns [`CycleError`] if even the raw edges contradict each other.
pub fn trace_to_execution_under(
    events: &[MemEvent],
    initial_value: impl Fn(Addr) -> Value,
    policy: &samm_core::policy::Policy,
) -> Result<ExecutionGraph, CycleError> {
    use samm_core::policy::Constraint;
    let mut graph = trace_to_execution_impl(events, initial_value, false)?;
    // Per-core policy edges over the trace's program order.
    let mut per_core: BTreeMap<ThreadId, Vec<NodeId>> = BTreeMap::new();
    for id in graph.memory_ops().collect::<Vec<_>>() {
        let n = graph.node(id);
        if !n.thread().is_init() {
            per_core.entry(n.thread()).or_default().push(id);
        }
    }
    for nodes in per_core.values_mut() {
        nodes.sort_by_key(|&id| graph.node(id).index_in_thread());
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let (a, b) = (nodes[i], nodes[j]);
                let constraint =
                    policy.combined_constraint(graph.node(a).classes(), graph.node(b).classes());
                let ordered = match constraint {
                    Constraint::Never => true,
                    Constraint::SameAddr => graph.node(a).addr() == graph.node(b).addr(),
                    Constraint::Bypass | Constraint::Free | Constraint::DataOnly => false,
                };
                if ordered {
                    graph.add_edge(a, b, EdgeKind::Program)?;
                }
            }
        }
    }
    Ok(graph)
}

/// Checks a trace against Store Atomicity.
///
/// For every run of the MSI simulator this must report `consistent` — the
/// executable form of the paper's claim that coherence protocols enforce
/// (a conservative approximation of) Store Atomicity.
pub fn check_trace(events: &[MemEvent], initial_value: impl Fn(Addr) -> Value) -> TraceReport {
    let operations = events.len();
    let graph = trace_to_execution(events, initial_value);
    finish_report(graph, operations)
}

/// Checks a trace against Store Atomicity under the local ordering rules
/// of an arbitrary `policy` (see [`trace_to_execution_under`]).
///
/// The same observed trace can be a violation under SC yet perfectly legal
/// under the weak model — the per-model flavour of the paper's section 8
/// "tools for verifying memory model violations".
pub fn check_trace_under(
    events: &[MemEvent],
    initial_value: impl Fn(Addr) -> Value,
    policy: &samm_core::policy::Policy,
) -> TraceReport {
    let operations = events.len();
    let graph = trace_to_execution_under(events, initial_value, policy);
    finish_report(graph, operations)
}

fn finish_report(graph: Result<ExecutionGraph, CycleError>, operations: usize) -> TraceReport {
    let mut graph = match graph {
        Ok(g) => g,
        Err(e) => {
            return TraceReport {
                consistent: false,
                atomicity_edges: 0,
                operations,
                violation: Some(e),
            }
        }
    };
    match atomicity::enforce(&mut graph) {
        Ok(added) => TraceReport {
            consistent: true,
            atomicity_edges: added,
            operations,
            violation: None,
        },
        Err(e) => TraceReport {
            consistent: false,
            atomicity_edges: 0,
            operations,
            violation: Some(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: Addr = Addr::new(0);
    const Y: Addr = Addr::new(1);

    fn zero(_: Addr) -> Value {
        Value::ZERO
    }

    #[test]
    fn empty_trace_is_consistent() {
        let report = check_trace(&[], zero);
        assert!(report.consistent);
        assert_eq!(report.operations, 0);
    }

    #[test]
    fn simple_handoff_is_consistent() {
        let trace = [
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(1),
                id: 0,
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::new(1),
                writer: Some(0),
            },
        ];
        let report = check_trace(&trace, zero);
        assert!(report.consistent);
        assert_eq!(report.operations, 2);
    }

    #[test]
    fn mp_violation_is_detected() {
        // The classic non-SC trace: T1 sees the flag but stale data. The
        // checker must flag it (this is what a buggy protocol would
        // produce).
        let trace = [
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(42),
                id: 0,
            },
            MemEvent::Store {
                core: 0,
                addr: Y,
                value: Value::new(1),
                id: 1,
            },
            MemEvent::Load {
                core: 1,
                addr: Y,
                value: Value::new(1),
                writer: Some(1),
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::ZERO,
                writer: None, // stale: observed init although 42 was ordered before the flag
            },
        ];
        let report = check_trace(&trace, zero);
        assert!(!report.consistent, "stale MP data violates Store Atomicity");
        assert!(report.violation.is_some());
    }

    #[test]
    fn coherence_violation_is_detected() {
        // One core sees two stores to x in opposite order of another
        // core's program order.
        let trace = [
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(1),
                id: 0,
            },
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(2),
                id: 1,
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::new(2),
                writer: Some(1),
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::new(1),
                writer: Some(0), // newer first, older second: illegal
            },
        ];
        let report = check_trace(&trace, zero);
        assert!(!report.consistent);
    }

    #[test]
    fn iriw_disagreement_is_detected_via_rule_c() {
        // Two observers see the two independent stores in opposite orders
        // — serializable per-location but globally inconsistent. Rule c
        // must reject it.
        let trace = [
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(1),
                id: 0,
            },
            MemEvent::Store {
                core: 1,
                addr: Y,
                value: Value::new(1),
                id: 1,
            },
            // Observer A: x new, y old.
            MemEvent::Load {
                core: 2,
                addr: X,
                value: Value::new(1),
                writer: Some(0),
            },
            MemEvent::Load {
                core: 2,
                addr: Y,
                value: Value::ZERO,
                writer: None,
            },
            // Observer B: y new, x old.
            MemEvent::Load {
                core: 3,
                addr: Y,
                value: Value::new(1),
                writer: Some(1),
            },
            MemEvent::Load {
                core: 3,
                addr: X,
                value: Value::ZERO,
                writer: None,
            },
        ];
        let report = check_trace(&trace, zero);
        assert!(
            !report.consistent,
            "IRIW disagreement violates Store Atomicity (rule c cascade)"
        );
    }

    #[test]
    fn policy_aware_checking_discriminates_models() {
        use samm_core::policy::Policy;
        // The classic MP-stale trace: illegal for SC cores, but perfectly
        // legal for weak cores (their loads may reorder).
        let trace = [
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(42),
                id: 0,
            },
            MemEvent::Store {
                core: 0,
                addr: Y,
                value: Value::new(1),
                id: 1,
            },
            MemEvent::Load {
                core: 1,
                addr: Y,
                value: Value::new(1),
                writer: Some(1),
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::ZERO,
                writer: None,
            },
        ];
        let sc = super::check_trace_under(&trace, zero, &Policy::sequential_consistency());
        assert!(!sc.consistent, "stale MP data violates SC");
        let weak = super::check_trace_under(&trace, zero, &Policy::weak());
        assert!(weak.consistent, "the weak model allows the reordered reads");
        // PSO also allows it (the stores may have reordered).
        let pso = super::check_trace_under(&trace, zero, &Policy::pso());
        assert!(pso.consistent);
    }

    #[test]
    fn policy_aware_checking_matches_plain_checking_for_sc() {
        use samm_core::policy::Policy;
        let trace = [
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(1),
                id: 0,
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::new(1),
                writer: Some(0),
            },
        ];
        let plain = super::check_trace(&trace, zero);
        let policy = super::check_trace_under(&trace, zero, &Policy::sequential_consistency());
        assert_eq!(plain.consistent, policy.consistent);
    }

    #[test]
    fn coherence_violations_are_flagged_under_every_model() {
        use samm_core::policy::Policy;
        // Same-address read-read inversion: the weak model permits it
        // (Figure 1 leaves same-address load pairs unordered), stronger
        // models reject it.
        let trace = [
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(1),
                id: 0,
            },
            MemEvent::Store {
                core: 0,
                addr: X,
                value: Value::new(2),
                id: 1,
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::new(2),
                writer: Some(1),
            },
            MemEvent::Load {
                core: 1,
                addr: X,
                value: Value::new(1),
                writer: Some(0),
            },
        ];
        for policy in [
            Policy::sequential_consistency(),
            Policy::tso(),
            Policy::pso(),
        ] {
            let r = super::check_trace_under(&trace, zero, &policy);
            assert!(!r.consistent, "{} must reject the inversion", policy.name());
        }
        let weak = super::check_trace_under(&trace, zero, &Policy::weak());
        assert!(weak.consistent, "CoRR is weak-legal, as in the catalog");
    }

    #[test]
    fn initial_values_flow_into_the_graph() {
        let trace = [MemEvent::Load {
            core: 0,
            addr: X,
            value: Value::new(9),
            writer: None,
        }];
        let graph = trace_to_execution(&trace, |_| Value::new(9)).unwrap();
        let load = graph
            .memory_ops()
            .find(|&id| graph.node(id).is_load())
            .unwrap();
        assert_eq!(graph.node(load).value(), Some(Value::new(9)));
    }
}
