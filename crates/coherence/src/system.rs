//! The coherent multiprocessor: in-order cores, private L1s, a blocking
//! directory, and an interconnect with randomized message delivery.
//!
//! The protocol is a standard blocking-directory MSI design:
//!
//! * `GetS` to an idle line is answered from memory (Uncached/Shared) or
//!   forwarded to the owner, who downgrades M→S, sends data to the
//!   requester and writes back to the directory;
//! * `GetM` invalidates sharers (acks are collected by the requester),
//!   or forwards to the owner, who hands over the line; the directory
//!   stays *busy* until the requester's `Unblock`, queueing conflicting
//!   requests;
//! * per-link FIFO delivery, with the *choice* of which link delivers next
//!   (or which core advances) randomized by a seeded RNG — each seed
//!   explores one interleaving of the protocol.
//!
//! Every data message carries the id of the store that produced the value,
//! so a run yields a trace of `(load, observed store)` pairs that
//! [`crate::trace`] checks against Store Atomicity.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error as StdError;
use std::fmt;

use rand::prelude::*;

use samm_core::ids::{Addr, Reg, Value};
use samm_core::instr::{Instr, Operand, Program};
use samm_core::outcome::Outcome;

use crate::cache::{L1Cache, LineState};
use crate::msg::{Msg, WriterId};
use crate::trace::MemEvent;

/// A deliberately injected protocol bug, for validating that the Store
/// Atomicity trace checker actually catches broken coherence (the
/// negative control of the paper's section 4.2 claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// The directory grants ownership without invalidating sharers (and
    /// reports zero acks). Stale shared copies survive, so readers may
    /// observe overwritten values.
    DropInvalidations,
}

/// Configuration for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// RNG seed selecting the interleaving.
    pub seed: u64,
    /// Abort after this many scheduler steps.
    pub max_steps: usize,
    /// Optional injected bug (see [`Fault`]).
    pub fault: Option<Fault>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            seed: 0,
            max_steps: 1_000_000,
            fault: None,
        }
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoherenceError {
    /// No core can advance and no message is in flight, yet the system is
    /// not finished — a protocol deadlock (would indicate a bug).
    Deadlock,
    /// The step budget ran out.
    StepLimit {
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceError::Deadlock => write!(f, "protocol deadlock"),
            CoherenceError::StepLimit { limit } => {
                write!(f, "simulation exceeded {limit} steps")
            }
        }
    }
}

impl StdError for CoherenceError {}

/// Counters from a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Messages delivered.
    pub messages: usize,
    /// Loads/stores that hit in the L1.
    pub hits: usize,
    /// Loads/stores that missed and used the protocol.
    pub misses: usize,
    /// Invalidations performed.
    pub invalidations: usize,
    /// MESI Exclusive grants (sole-reader GetS responses).
    pub exclusive_grants: usize,
    /// Scheduler steps taken.
    pub steps: usize,
}

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final register files.
    pub outcome: Outcome,
    /// Completed memory operations, in global completion order; per-core
    /// subsequences are in program order (the cores are in-order).
    pub trace: Vec<MemEvent>,
    /// Counters.
    pub stats: SystemStats,
}

/// What a stalled core is waiting for.
#[derive(Debug, Clone)]
enum PendingKind {
    Load {
        dst: Reg,
    },
    Store {
        value: Value,
        store_id: usize,
    },
    /// An atomic read-modify-write: needs ownership like a store; operands
    /// were evaluated at issue time (the core is in-order).
    Rmw {
        dst: Reg,
        op: samm_core::instr::RmwOp,
        src: Value,
        expect: Option<Value>,
        store_id: usize,
    },
}

#[derive(Debug, Clone)]
struct PendingOp {
    addr: Addr,
    kind: PendingKind,
    /// Filled when the Data message arrives: `(value, writer, acks_needed)`.
    data: Option<(Value, WriterId, usize)>,
    acks_received: usize,
    /// Whether the data grant was Exclusive (MESI E).
    exclusive: bool,
}

#[derive(Debug, Clone)]
struct Core {
    pc: usize,
    regs: Vec<Value>,
    halted: bool,
    pending: Option<PendingOp>,
    cache: L1Cache,
}

/// Directory-side state of one line.
#[derive(Debug, Clone)]
enum DirState {
    Uncached,
    Shared(BTreeSet<usize>),
    Modified(usize),
}

#[derive(Debug, Clone)]
struct DirLine {
    state: DirState,
    value: Value,
    writer: WriterId,
    busy: bool,
    /// Requester of an in-flight M→S downgrade (needed at WbData time).
    pending_sharer: Option<usize>,
    queued: VecDeque<Msg>,
}

/// The whole coherent system.
#[derive(Debug)]
pub struct CoherentSystem {
    program: Program,
    cores: Vec<Core>,
    dir: BTreeMap<Addr, DirLine>,
    /// Per-(src, dst) FIFO links. Node `cores.len()` is the directory.
    links: BTreeMap<(usize, usize), VecDeque<Msg>>,
    rng: StdRng,
    trace: Vec<MemEvent>,
    next_store_id: usize,
    stats: SystemStats,
    config: SystemConfig,
}

impl CoherentSystem {
    /// Builds a system running `program` with one core per thread.
    pub fn new(program: &Program, config: SystemConfig) -> Self {
        let cores = program
            .threads()
            .iter()
            .map(|t| Core {
                pc: 0,
                regs: vec![Value::ZERO; t.reg_count()],
                halted: false,
                pending: None,
                cache: L1Cache::new(),
            })
            .collect();
        CoherentSystem {
            program: program.clone(),
            cores,
            dir: BTreeMap::new(),
            links: BTreeMap::new(),
            rng: StdRng::seed_from_u64(config.seed),
            trace: Vec::new(),
            next_store_id: 0,
            stats: SystemStats::default(),
            config,
        }
    }

    fn dir_node(&self) -> usize {
        self.cores.len()
    }

    fn send(&mut self, from: usize, to: usize, msg: Msg) {
        self.links.entry((from, to)).or_default().push_back(msg);
    }

    fn dir_line(&mut self, addr: Addr) -> &mut DirLine {
        let initial = self.program.initial_value(addr);
        self.dir.entry(addr).or_insert_with(|| DirLine {
            state: DirState::Uncached,
            value: initial,
            writer: None,
            busy: false,
            pending_sharer: None,
            queued: VecDeque::new(),
        })
    }

    fn operand(&self, core: usize, op: Operand) -> Value {
        match op {
            Operand::Imm(v) => v,
            Operand::Reg(r) => self.cores[core]
                .regs
                .get(r.index())
                .copied()
                .unwrap_or(Value::ZERO),
        }
    }

    fn set_reg(&mut self, core: usize, r: Reg, v: Value) {
        let regs = &mut self.cores[core].regs;
        if r.index() >= regs.len() {
            regs.resize(r.index() + 1, Value::ZERO);
        }
        regs[r.index()] = v;
    }

    /// Whether core `c` can execute an instruction right now.
    fn core_ready(&self, c: usize) -> bool {
        !self.cores[c].halted && self.cores[c].pending.is_none()
    }

    /// Executes one instruction on core `c` (possibly stalling on a miss).
    fn advance_core(&mut self, c: usize) {
        debug_assert!(self.core_ready(c));
        let instrs = self.program.threads()[c].instrs();
        let pc = self.cores[c].pc;
        if pc >= instrs.len() {
            self.cores[c].halted = true;
            return;
        }
        match instrs[pc] {
            Instr::Mov { dst, src } => {
                let v = self.operand(c, src);
                self.set_reg(c, dst, v);
                self.cores[c].pc += 1;
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                let v = op.apply(self.operand(c, lhs), self.operand(c, rhs));
                self.set_reg(c, dst, v);
                self.cores[c].pc += 1;
            }
            Instr::Fence => {
                // In-order cores with one outstanding miss are already
                // strongly ordered; fences are no-ops here.
                self.cores[c].pc += 1;
            }
            Instr::BranchNz { cond, target } => {
                let taken = self.operand(c, cond).is_truthy();
                self.cores[c].pc = if taken { target } else { pc + 1 };
            }
            Instr::Jump { target } => {
                self.cores[c].pc = target;
            }
            Instr::Halt => {
                self.cores[c].halted = true;
            }
            Instr::Load { dst, addr } => {
                let a = Addr::from(self.operand(c, addr));
                if self.cores[c].cache.can_read(a) {
                    let (value, writer) = self.cores[c].cache.read(a);
                    self.stats.hits += 1;
                    self.complete_load(c, dst, a, value, writer);
                } else {
                    self.stats.misses += 1;
                    self.cores[c].pending = Some(PendingOp {
                        addr: a,
                        kind: PendingKind::Load { dst },
                        data: None,
                        acks_received: 0,
                        exclusive: false,
                    });
                    let dir = self.dir_node();
                    self.send(c, dir, Msg::GetS { core: c, addr: a });
                }
            }
            Instr::Store { addr, val } => {
                let a = Addr::from(self.operand(c, addr));
                let v = self.operand(c, val);
                if self.cores[c].cache.can_write(a) {
                    self.stats.hits += 1;
                    self.complete_store(c, a, v);
                } else {
                    self.stats.misses += 1;
                    let store_id = self.next_store_id;
                    self.next_store_id += 1;
                    self.cores[c].pending = Some(PendingOp {
                        addr: a,
                        kind: PendingKind::Store { value: v, store_id },
                        data: None,
                        acks_received: 0,
                        exclusive: false,
                    });
                    let dir = self.dir_node();
                    self.send(c, dir, Msg::GetM { core: c, addr: a });
                }
            }
            Instr::Rmw { dst, addr, op, src } => {
                let a = Addr::from(self.operand(c, addr));
                let src = self.operand(c, src);
                let expect = match op {
                    samm_core::instr::RmwOp::Cas { expect } => Some(self.operand(c, expect)),
                    _ => None,
                };
                if self.cores[c].cache.can_write(a) {
                    self.stats.hits += 1;
                    let (old, old_writer) = self.cores[c].cache.read(a);
                    self.complete_rmw(c, dst, a, op, src, expect, old, old_writer, None);
                } else {
                    self.stats.misses += 1;
                    let store_id = self.next_store_id;
                    self.next_store_id += 1;
                    self.cores[c].pending = Some(PendingOp {
                        addr: a,
                        kind: PendingKind::Rmw {
                            dst,
                            op,
                            src,
                            expect,
                            store_id,
                        },
                        data: None,
                        acks_received: 0,
                        exclusive: false,
                    });
                    let dir = self.dir_node();
                    self.send(c, dir, Msg::GetM { core: c, addr: a });
                }
            }
        }
    }

    /// Completes an RMW on an owned line: reads `old`, writes the new
    /// value (if any), records the trace event, advances the PC.
    /// `store_id` is `None` on a hit (a fresh id is allocated when the
    /// operation writes).
    #[allow(clippy::too_many_arguments)]
    fn complete_rmw(
        &mut self,
        c: usize,
        dst: Reg,
        addr: Addr,
        op: samm_core::instr::RmwOp,
        src: Value,
        expect: Option<Value>,
        old: Value,
        old_writer: WriterId,
        store_id: Option<usize>,
    ) {
        let new = match op {
            samm_core::instr::RmwOp::Swap => Some(src),
            samm_core::instr::RmwOp::FetchAdd => {
                Some(Value::new(old.raw().wrapping_add(src.raw())))
            }
            samm_core::instr::RmwOp::Cas { .. } => {
                if Some(old) == expect {
                    Some(src)
                } else {
                    None
                }
            }
        };
        let stored = new.map(|v| {
            let id = store_id.unwrap_or_else(|| {
                let id = self.next_store_id;
                self.next_store_id += 1;
                id
            });
            self.cores[c].cache.write(addr, v, Some(id));
            (v, id)
        });
        self.set_reg(c, dst, old);
        self.cores[c].pc += 1;
        self.trace.push(MemEvent::Rmw {
            core: c,
            addr,
            loaded: old,
            writer: old_writer,
            stored,
        });
    }

    fn complete_load(&mut self, c: usize, dst: Reg, addr: Addr, value: Value, writer: WriterId) {
        self.set_reg(c, dst, value);
        self.cores[c].pc += 1;
        self.trace.push(MemEvent::Load {
            core: c,
            addr,
            value,
            writer,
        });
    }

    /// Writes an owned line (allocating a fresh store id for hits).
    fn complete_store(&mut self, c: usize, addr: Addr, value: Value) {
        let id = self.next_store_id;
        self.next_store_id += 1;
        self.finish_store(c, addr, value, id);
    }

    fn finish_store(&mut self, c: usize, addr: Addr, value: Value, id: usize) {
        self.cores[c].cache.write(addr, value, Some(id));
        self.cores[c].pc += 1;
        self.trace.push(MemEvent::Store {
            core: c,
            addr,
            value,
            id,
        });
    }

    /// Processes a directory request (line known idle).
    fn dir_process(&mut self, msg: Msg) {
        let dir = self.dir_node();
        match msg {
            Msg::GetS { core, addr } => {
                let line = self.dir_line(addr);
                match line.state.clone() {
                    DirState::Uncached => {
                        // MESI E optimization: the sole reader gets the
                        // line Exclusive and may later upgrade silently.
                        line.state = DirState::Modified(core);
                        line.busy = true;
                        let (value, writer) = (line.value, line.writer);
                        self.stats.exclusive_grants += 1;
                        self.send(
                            dir,
                            core,
                            Msg::Data {
                                addr,
                                value,
                                writer,
                                acks: 0,
                                exclusive: true,
                            },
                        );
                    }
                    DirState::Shared(mut set) => {
                        set.insert(core);
                        line.state = DirState::Shared(set);
                        let (value, writer) = (line.value, line.writer);
                        self.send(
                            dir,
                            core,
                            Msg::Data {
                                addr,
                                value,
                                writer,
                                acks: 0,
                                exclusive: false,
                            },
                        );
                    }
                    DirState::Modified(owner) => {
                        line.busy = true;
                        line.pending_sharer = Some(core);
                        self.send(
                            dir,
                            owner,
                            Msg::FwdGetS {
                                requester: core,
                                addr,
                            },
                        );
                    }
                }
            }
            Msg::GetM { core, addr } => {
                let line = self.dir_line(addr);
                line.busy = true;
                match line.state.clone() {
                    DirState::Uncached => {
                        line.state = DirState::Modified(core);
                        let (value, writer) = (line.value, line.writer);
                        self.send(
                            dir,
                            core,
                            Msg::Data {
                                addr,
                                value,
                                writer,
                                acks: 0,
                                exclusive: false,
                            },
                        );
                    }
                    DirState::Shared(set) => {
                        let sharers: Vec<usize> =
                            set.iter().copied().filter(|&s| s != core).collect();
                        line.state = DirState::Modified(core);
                        let (value, writer) = (line.value, line.writer);
                        // Injected bug: skip the invalidations entirely.
                        let drop_invs = self.config.fault == Some(Fault::DropInvalidations);
                        let acks = if drop_invs { 0 } else { sharers.len() };
                        self.send(
                            dir,
                            core,
                            Msg::Data {
                                addr,
                                value,
                                writer,
                                acks,
                                exclusive: false,
                            },
                        );
                        if !drop_invs {
                            for s in sharers {
                                self.stats.invalidations += 1;
                                self.send(
                                    dir,
                                    s,
                                    Msg::Inv {
                                        requester: core,
                                        addr,
                                    },
                                );
                            }
                        }
                    }
                    DirState::Modified(owner) => {
                        line.state = DirState::Modified(core);
                        self.send(
                            dir,
                            owner,
                            Msg::FwdGetM {
                                requester: core,
                                addr,
                            },
                        );
                    }
                }
            }
            _ => unreachable!("not a directory request"),
        }
    }

    fn dir_handle(&mut self, from: usize, msg: Msg) {
        match msg {
            Msg::GetS { addr, .. } | Msg::GetM { addr, .. } => {
                if self.dir_line(addr).busy {
                    self.dir_line(addr).queued.push_back(msg);
                } else {
                    self.dir_process(msg);
                }
            }
            Msg::WbData {
                addr,
                value,
                writer,
            } => {
                let requester = {
                    let line = self.dir_line(addr);
                    line.value = value;
                    line.writer = writer;
                    let requester = line
                        .pending_sharer
                        .take()
                        .expect("WbData matches a FwdGetS");
                    let mut set = BTreeSet::new();
                    set.insert(from);
                    set.insert(requester);
                    line.state = DirState::Shared(set);
                    line.busy = false;
                    requester
                };
                let _ = requester;
                self.pump_queue(addr);
            }
            Msg::Unblock { addr, .. } => {
                self.dir_line(addr).busy = false;
                self.pump_queue(addr);
            }
            _ => unreachable!("unexpected directory message {msg:?}"),
        }
    }

    /// Serves queued requests while the line stays idle.
    fn pump_queue(&mut self, addr: Addr) {
        loop {
            let next = {
                let line = self.dir_line(addr);
                if line.busy {
                    return;
                }
                line.queued.pop_front()
            };
            match next {
                Some(msg) => self.dir_process(msg),
                None => return,
            }
        }
    }

    fn core_handle(&mut self, c: usize, msg: Msg) {
        let dir = self.dir_node();
        match msg {
            Msg::FwdGetS { requester, addr } => {
                let (value, writer) = self.cores[c].cache.downgrade(addr);
                self.send(
                    c,
                    requester,
                    Msg::Data {
                        addr,
                        value,
                        writer,
                        acks: 0,
                        exclusive: false,
                    },
                );
                self.send(
                    c,
                    dir,
                    Msg::WbData {
                        addr,
                        value,
                        writer,
                    },
                );
            }
            Msg::FwdGetM { requester, addr } => {
                let (value, writer) = self.cores[c]
                    .cache
                    .invalidate(addr)
                    .expect("forwarded owner holds the line in M");
                self.send(
                    c,
                    requester,
                    Msg::Data {
                        addr,
                        value,
                        writer,
                        acks: 0,
                        exclusive: false,
                    },
                );
            }
            Msg::Inv { requester, addr } => {
                self.cores[c].cache.invalidate(addr);
                self.send(c, requester, Msg::InvAck { addr });
            }
            Msg::InvAck { addr } => {
                let pending = self.cores[c]
                    .pending
                    .as_mut()
                    .expect("InvAck only sent to a core with a pending store");
                debug_assert_eq!(pending.addr, addr);
                pending.acks_received += 1;
                self.try_complete_pending(c);
            }
            Msg::Data {
                addr,
                value,
                writer,
                acks,
                exclusive,
            } => {
                let pending = self.cores[c]
                    .pending
                    .as_mut()
                    .expect("Data only sent to a stalled core");
                debug_assert_eq!(pending.addr, addr);
                pending.data = Some((value, writer, acks));
                pending.exclusive = exclusive;
                self.try_complete_pending(c);
            }
            _ => unreachable!("unexpected core message {msg:?}"),
        }
    }

    fn try_complete_pending(&mut self, c: usize) {
        let Some(pending) = self.cores[c].pending.clone() else {
            return;
        };
        let Some((value, writer, acks_needed)) = pending.data else {
            return;
        };
        match pending.kind {
            PendingKind::Load { dst } => {
                let state = if pending.exclusive {
                    LineState::Exclusive
                } else {
                    LineState::Shared
                };
                self.cores[c]
                    .cache
                    .install(pending.addr, state, value, writer);
                self.cores[c].pending = None;
                self.complete_load(c, dst, pending.addr, value, writer);
                if pending.exclusive {
                    let dir = self.dir_node();
                    self.send(
                        c,
                        dir,
                        Msg::Unblock {
                            core: c,
                            addr: pending.addr,
                        },
                    );
                }
            }
            PendingKind::Store {
                value: store_value,
                store_id,
            } => {
                if pending.acks_received < acks_needed {
                    return;
                }
                self.cores[c]
                    .cache
                    .install(pending.addr, LineState::Modified, value, writer);
                self.cores[c].pending = None;
                self.finish_store(c, pending.addr, store_value, store_id);
                let dir = self.dir_node();
                self.send(
                    c,
                    dir,
                    Msg::Unblock {
                        core: c,
                        addr: pending.addr,
                    },
                );
            }
            PendingKind::Rmw {
                dst,
                op,
                src,
                expect,
                store_id,
            } => {
                if pending.acks_received < acks_needed {
                    return;
                }
                self.cores[c]
                    .cache
                    .install(pending.addr, LineState::Modified, value, writer);
                self.cores[c].pending = None;
                self.complete_rmw(
                    c,
                    dst,
                    pending.addr,
                    op,
                    src,
                    expect,
                    value,
                    writer,
                    Some(store_id),
                );
                let dir = self.dir_node();
                self.send(
                    c,
                    dir,
                    Msg::Unblock {
                        core: c,
                        addr: pending.addr,
                    },
                );
            }
        }
    }

    fn done(&self) -> bool {
        self.cores.iter().all(|c| c.halted && c.pending.is_none())
            && self.links.values().all(VecDeque::is_empty)
    }

    /// Runs the system to completion under the seeded random schedule.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::StepLimit`] on runaway programs and
    /// [`CoherenceError::Deadlock`] if the protocol wedges (a bug — the
    /// test suite asserts this never happens).
    pub fn run(mut self) -> Result<RunResult, CoherenceError> {
        while !self.done() {
            self.stats.steps += 1;
            if self.stats.steps > self.config.max_steps {
                return Err(CoherenceError::StepLimit {
                    limit: self.config.max_steps,
                });
            }
            // Enabled actions: deliver the head of any non-empty link, or
            // advance any ready core.
            let ready_cores: Vec<usize> = (0..self.cores.len())
                .filter(|&c| self.core_ready(c))
                .collect();
            let busy_links: Vec<(usize, usize)> = self
                .links
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(&k, _)| k)
                .collect();
            let total = ready_cores.len() + busy_links.len();
            if total == 0 {
                return Err(CoherenceError::Deadlock);
            }
            let choice = self.rng.gen_range(0..total);
            if choice < ready_cores.len() {
                self.advance_core(ready_cores[choice]);
            } else {
                let (from, to) = busy_links[choice - ready_cores.len()];
                let msg = self
                    .links
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .expect("link was non-empty");
                self.stats.messages += 1;
                if to == self.dir_node() {
                    self.dir_handle(from, msg);
                } else {
                    self.core_handle(to, msg);
                }
            }
        }
        let outcome = Outcome::new(self.cores.iter().map(|c| c.regs.clone()).collect());
        Ok(RunResult {
            outcome,
            trace: self.trace,
            stats: self.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::instr::ThreadProgram;

    const X: u64 = 0;
    const Y: u64 = 1;

    fn st(a: u64, v: u64) -> Instr {
        Instr::Store {
            addr: a.into(),
            val: v.into(),
        }
    }

    fn ld(r: usize, a: u64) -> Instr {
        Instr::Load {
            dst: Reg::new(r),
            addr: a.into(),
        }
    }

    fn run_seed(program: &Program, seed: u64) -> RunResult {
        CoherentSystem::new(
            program,
            SystemConfig {
                seed,
                ..SystemConfig::default()
            },
        )
        .run()
        .expect("run completes")
    }

    #[test]
    fn single_core_read_own_write() {
        let prog = Program::new(vec![ThreadProgram::new(vec![st(X, 7), ld(0, X)])]);
        let r = run_seed(&prog, 1);
        assert_eq!(
            r.outcome.reg(0, Reg::new(0)),
            Value::new(7),
            "a core reads its own store"
        );
        assert_eq!(r.trace.len(), 2);
    }

    #[test]
    fn initial_memory_is_visible() {
        let mut prog = Program::new(vec![ThreadProgram::new(vec![ld(0, X)])]);
        prog.set_init(Addr::new(X), Value::new(55));
        let r = run_seed(&prog, 2);
        assert_eq!(r.outcome.reg(0, Reg::new(0)), Value::new(55));
        match r.trace[0] {
            MemEvent::Load { writer, value, .. } => {
                assert_eq!(writer, None, "initial memory has no writer id");
                assert_eq!(value, Value::new(55));
            }
            _ => panic!("expected a load event"),
        }
    }

    #[test]
    fn ownership_migrates_between_cores() {
        // Both cores store to x, then both read it: the final reads agree
        // with coherence (same last writer visible to a later reader).
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), ld(0, X)]),
            ThreadProgram::new(vec![st(X, 2), ld(0, X)]),
        ]);
        for seed in 0..50 {
            let r = run_seed(&prog, seed);
            // Each core's own read sees its own store or a later one —
            // never garbage.
            for c in 0..2 {
                let v = r.outcome.reg(c, Reg::new(0)).raw();
                assert!(v == 1 || v == 2, "core {c} read {v}");
            }
        }
    }

    #[test]
    fn invalidation_happens_on_write_after_sharing() {
        // T1 reads x (shared), T0 then writes x: the protocol must
        // invalidate T1's copy, and T1's second read sees the new value
        // if it happens after.
        let prog = Program::new(vec![
            ThreadProgram::new(vec![ld(0, X), st(X, 9)]),
            ThreadProgram::new(vec![ld(0, X), ld(1, X)]),
        ]);
        let mut saw_invalidation = false;
        for seed in 0..80 {
            let r = run_seed(&prog, seed);
            if r.stats.invalidations > 0 {
                saw_invalidation = true;
            }
            // Coherence: if T1's first read saw 9, the second must too.
            let (a, b) = (
                r.outcome.reg(1, Reg::new(0)).raw(),
                r.outcome.reg(1, Reg::new(1)).raw(),
            );
            assert!(!(a == 9 && b == 0), "coherence violated: read 9 then 0");
        }
        assert!(saw_invalidation, "some schedule must exercise invalidation");
    }

    #[test]
    fn mp_never_shows_stale_data() {
        // SC cores + coherence give SC: the MP stale outcome must never
        // appear, across many schedules.
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 42), st(Y, 1)]),
            ThreadProgram::new(vec![ld(0, Y), ld(1, X)]),
        ]);
        for seed in 0..100 {
            let r = run_seed(&prog, seed);
            let (flag, data) = (
                r.outcome.reg(1, Reg::new(0)).raw(),
                r.outcome.reg(1, Reg::new(1)).raw(),
            );
            assert!(
                !(flag == 1 && data == 0),
                "seed {seed} produced non-SC outcome"
            );
        }
    }

    #[test]
    fn sb_interleavings_vary_by_seed() {
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), ld(0, Y)]),
            ThreadProgram::new(vec![st(Y, 1), ld(0, X)]),
        ]);
        let mut outcomes = std::collections::BTreeSet::new();
        for seed in 0..200 {
            let r = run_seed(&prog, seed);
            outcomes.insert((
                r.outcome.reg(0, Reg::new(0)).raw(),
                r.outcome.reg(1, Reg::new(0)).raw(),
            ));
            // SC forbids 0/0.
            assert_ne!(
                (
                    r.outcome.reg(0, Reg::new(0)).raw(),
                    r.outcome.reg(1, Reg::new(0)).raw()
                ),
                (0, 0),
                "seed {seed}"
            );
        }
        assert!(
            outcomes.len() >= 2,
            "different seeds must explore different interleavings: {outcomes:?}"
        );
    }

    #[test]
    fn stats_count_protocol_activity() {
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 1), ld(0, Y)]),
            ThreadProgram::new(vec![st(Y, 1), ld(0, X)]),
        ]);
        let r = run_seed(&prog, 3);
        assert!(r.stats.messages > 0);
        assert!(r.stats.misses >= 4, "four cold misses at minimum");
        assert!(r.stats.steps > 0);
    }

    #[test]
    fn exclusive_grant_enables_silent_upgrade() {
        // Read-then-write by a sole core: the read gets the line in E, so
        // the subsequent write hits without any further protocol traffic.
        let prog = Program::new(vec![ThreadProgram::new(vec![ld(0, X), st(X, 7), ld(1, X)])]);
        let r = run_seed(&prog, 3);
        assert_eq!(r.stats.exclusive_grants, 1, "the lone read is granted E");
        assert_eq!(r.stats.misses, 1, "only the initial read misses");
        assert_eq!(
            r.stats.hits, 2,
            "the write upgrades silently; the reread hits"
        );
        assert_eq!(r.outcome.reg(0, Reg::new(1)), Value::new(7));
    }

    #[test]
    fn exclusive_line_downgrades_on_remote_read() {
        // T0 reads x (granted E); T1 then reads x: the E copy must
        // downgrade and both observe the same data.
        let mut prog = Program::new(vec![
            ThreadProgram::new(vec![ld(0, X)]),
            ThreadProgram::new(vec![ld(0, X)]),
        ]);
        prog.set_init(Addr::new(X), Value::new(9));
        for seed in 0..40 {
            let r = run_seed(&prog, seed);
            assert_eq!(r.outcome.reg(0, Reg::new(0)), Value::new(9), "seed {seed}");
            assert_eq!(r.outcome.reg(1, Reg::new(0)), Value::new(9), "seed {seed}");
            let report = crate::trace::check_trace(&r.trace, |a| prog.initial_value(a));
            assert!(report.consistent, "seed {seed}");
        }
    }

    #[test]
    fn racing_fetch_adds_serialize_through_ownership() {
        use samm_core::instr::RmwOp;
        let faa = || {
            ThreadProgram::new(vec![Instr::Rmw {
                dst: Reg::new(0),
                addr: X.into(),
                op: RmwOp::FetchAdd,
                src: 1u64.into(),
            }])
        };
        let prog = Program::new(vec![faa(), faa()]);
        for seed in 0..60 {
            let r = run_seed(&prog, seed);
            let (a, b) = (
                r.outcome.reg(0, Reg::new(0)).raw(),
                r.outcome.reg(1, Reg::new(0)).raw(),
            );
            assert!(
                (a, b) == (0, 1) || (a, b) == (1, 0),
                "seed {seed}: atomic increments must serialize, got ({a},{b})"
            );
            // The trace must contain two successful RMW events with
            // distinct store ids, and check out under Store Atomicity.
            let rmws = r
                .trace
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        MemEvent::Rmw {
                            stored: Some(_),
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(rmws, 2);
            let report = crate::trace::check_trace(&r.trace, |addr| prog.initial_value(addr));
            assert!(report.consistent, "seed {seed}");
        }
    }

    #[test]
    fn failed_cas_leaves_the_line_clean() {
        use samm_core::instr::RmwOp;
        let mut prog = Program::new(vec![ThreadProgram::new(vec![
            Instr::Rmw {
                dst: Reg::new(0),
                addr: X.into(),
                op: RmwOp::Cas {
                    expect: 9u64.into(),
                },
                src: 1u64.into(),
            },
            ld(1, X),
        ])]);
        prog.set_init(Addr::new(X), Value::new(5));
        let r = run_seed(&prog, 11);
        assert_eq!(r.outcome.reg(0, Reg::new(0)), Value::new(5));
        assert_eq!(r.outcome.reg(0, Reg::new(1)), Value::new(5));
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, MemEvent::Rmw { stored: None, .. })));
        let report = crate::trace::check_trace(&r.trace, |a| prog.initial_value(a));
        assert!(report.consistent);
    }

    #[test]
    fn dropped_invalidations_break_message_passing() {
        // Negative control: with invalidations dropped, the MP stale
        // outcome becomes reachable and the Store Atomicity checker must
        // flag the trace.
        use crate::trace::check_trace;
        // Both cores read x first so the line is genuinely Shared (a sole
        // reader would hold it Exclusive, and the ownership transfer on
        // the write would invalidate it even with Inv messages dropped).
        let prog = Program::new(vec![
            ThreadProgram::new(vec![ld(3, X), st(X, 42), st(Y, 1)]),
            ThreadProgram::new(vec![ld(2, X), ld(0, Y), ld(1, X)]),
        ]);
        let mut violation_caught = false;
        for seed in 0..400 {
            let run = CoherentSystem::new(
                &prog,
                SystemConfig {
                    seed,
                    fault: Some(crate::system::Fault::DropInvalidations),
                    ..SystemConfig::default()
                },
            )
            .run()
            .expect("faulty runs still terminate");
            // Stale shape: the flag was seen set but the second x read
            // still returned the overwritten value.
            let stale = run.outcome.reg(1, Reg::new(0)).raw() == 1
                && run.outcome.reg(1, Reg::new(1)).raw() == 0;
            if stale {
                let report = check_trace(&run.trace, |a| prog.initial_value(a));
                assert!(
                    !report.consistent,
                    "seed {seed}: the checker must catch the stale read"
                );
                violation_caught = true;
            }
        }
        assert!(
            violation_caught,
            "some schedule must produce (and the checker catch) the stale outcome"
        );
    }

    #[test]
    fn healthy_protocol_never_triggers_the_checker() {
        // Positive control for the fault test: same program, no fault.
        use crate::trace::check_trace;
        let prog = Program::new(vec![
            ThreadProgram::new(vec![st(X, 42), st(Y, 1)]),
            ThreadProgram::new(vec![ld(2, X), ld(0, Y), ld(1, X)]),
        ]);
        for seed in 0..100 {
            let run = run_seed(&prog, seed);
            let report = check_trace(&run.trace, |a| prog.initial_value(a));
            assert!(report.consistent, "seed {seed}");
        }
    }

    #[test]
    fn step_limit_is_enforced() {
        let prog = Program::new(vec![ThreadProgram::new(vec![Instr::Jump { target: 0 }])]);
        let err = CoherentSystem::new(
            &prog,
            SystemConfig {
                seed: 0,
                max_steps: 50,
                ..SystemConfig::default()
            },
        )
        .run()
        .unwrap_err();
        assert_eq!(err, CoherenceError::StepLimit { limit: 50 });
    }

    #[test]
    fn branches_execute_on_cores() {
        let prog = Program::new(vec![ThreadProgram::new(vec![
            ld(0, X),
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 3,
            },
            st(Y, 5),
        ])]);
        let r = run_seed(&prog, 4);
        // x is 0, so the branch falls through and the store happens.
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, MemEvent::Store { addr, .. } if addr.raw() == Y)));
    }
}
