//! The worked figures of the paper as executable litmus tests.
//!
//! Each entry reproduces the execution(s) the paper draws and the verdicts
//! its prose derives. Figure and instruction numbering follow the paper
//! (registers are named after the load that writes them, e.g. `r5` holds
//! the value of `L5`).

use super::{CatalogEntry, ModelSel};
use crate::builder::LitmusBuilder;

use ModelSel::{NaiveTso, Pso, Sc, Tso, Weak, WeakSpec};

/// Figure 3 — "when a Store to y is observed to have been overwritten, the
/// stores must be ordered" (Store Atomicity rule a).
///
/// Thread A: `S1 x,1; fence; S2 y,2; L5 y`.
/// Thread B: `S3 y,3; fence; S4 x,4; L6 x`.
///
/// If `L5 y = 3` then `S2 @ S3`, hence `S1 @ S4 @ L6`: `L6 x = 1` is
/// forbidden in every store-atomic model.
pub fn fig3() -> CatalogEntry {
    let test = LitmusBuilder::new("fig3")
        .thread("A", |t| {
            t.store("x", 1).fence().store("y", 2).load("r5", "y");
        })
        .thread("B", |t| {
            t.store("y", 3).fence().store("x", 4).load("r6", "x");
        })
        .forbid(&[("A", "r5", 3), ("B", "r6", 1)])
        .allow(&[("A", "r5", 3), ("B", "r6", 4)])
        .allow(&[("A", "r5", 2), ("B", "r6", 1)])
        .build()
        .expect("fig3 compiles");
    let mut verdicts = Vec::new();
    for model in [Sc, NaiveTso, Tso, Pso, Weak, WeakSpec] {
        verdicts.push((0, model, false));
        verdicts.push((1, model, true));
        verdicts.push((2, model, true));
    }
    CatalogEntry::new(
        test,
        "Figure 3: observing an overwrite orders the stores (rule a); \
         L5 y = 3 forbids L6 x = 1",
        &verdicts,
    )
}

/// Figure 4 — "observing a Store to y orders the Load before an overwriting
/// Store" (Store Atomicity rule b).
///
/// Thread A: `S1 x,1; S2 x,2; fence; L4 y`.
/// Thread B: `S3 y,3; S5 y,5; fence; L6 x`.
///
/// If `L4 y = 3` then `L4 @ S5`, hence `S2 @ L6`: `L6 x = 1` is forbidden.
pub fn fig4() -> CatalogEntry {
    let test = LitmusBuilder::new("fig4")
        .thread("A", |t| {
            t.store("x", 1).store("x", 2).fence().load("r4", "y");
        })
        .thread("B", |t| {
            t.store("y", 3).store("y", 5).fence().load("r6", "x");
        })
        .forbid(&[("A", "r4", 3), ("B", "r6", 1)])
        .allow(&[("A", "r4", 5), ("B", "r6", 1)])
        .allow(&[("A", "r4", 3), ("B", "r6", 2)])
        .build()
        .expect("fig4 compiles");
    let mut verdicts = Vec::new();
    for model in [Sc, NaiveTso, Tso, Pso, Weak, WeakSpec] {
        verdicts.push((0, model, false));
        verdicts.push((1, model, true));
        verdicts.push((2, model, true));
    }
    CatalogEntry::new(
        test,
        "Figure 4: observing a later-overwritten store orders the load \
         before the overwrite (rule b); L4 y = 3 forbids L6 x = 1",
        &verdicts,
    )
}

/// Figure 5 — "unordered operations on y may order other operations"
/// (Store Atomicity rule c).
///
/// Thread A: `S1 x,1; fence; L3 y; L5 y`.
/// Thread B: `S2 y,2; fence; S6 z,6`.
/// Thread C: `S4 y,4; fence; L7 z; fence; S8 x,8; L9 x`.
///
/// With `L3 = 2, L5 = 4, L7 = 6`, the mutual ancestor `S1` of `{L3, L5}`
/// precedes the mutual successor `L7` of `{S2, S4}`, so `L9 x = 1` is
/// forbidden — even though `S2` and `S4` are never ordered.
pub fn fig5() -> CatalogEntry {
    let test = LitmusBuilder::new("fig5")
        .thread("A", |t| {
            t.store("x", 1).fence().load("r3", "y").load("r5", "y");
        })
        .thread("B", |t| {
            t.store("y", 2).fence().store("z", 6);
        })
        .thread("C", |t| {
            t.store("y", 4)
                .fence()
                .load("r7", "z")
                .fence()
                .store("x", 8)
                .load("r9", "x");
        })
        .forbid(&[
            ("A", "r3", 2),
            ("A", "r5", 4),
            ("C", "r7", 6),
            ("C", "r9", 1),
        ])
        .allow(&[
            ("A", "r3", 2),
            ("A", "r5", 4),
            ("C", "r7", 6),
            ("C", "r9", 8),
        ])
        .build()
        .expect("fig5 compiles");
    let mut verdicts = Vec::new();
    for model in [Sc, NaiveTso, Tso, Pso, Weak, WeakSpec] {
        verdicts.push((0, model, false));
        verdicts.push((1, model, true));
    }
    CatalogEntry::new(
        test,
        "Figure 5: parallel observation pairs order mutual ancestors before \
         mutual successors (rule c); L9 cannot observe the overwritten S1",
        &verdicts,
    )
}

/// Figure 7 — "store atomicity may need to be enforced on multiple
/// locations at one time": the closure cascades (edges a, b given; c, d
/// derived).
///
/// Thread A: `S1 x,1; fence; S3 y,3; L6 y`.
/// Thread B: `S4 y,4; fence; L5 x`.
/// Thread C: `S2 x,2`.
///
/// The drawn execution (`L5 x = 2`, `L6 y = 4`) is consistent — deriving
/// it requires the cascading edges `S3 @ S4` and `S1 @ S2`, which the unit
/// tests on [`samm_core::atomicity`] check at the graph level.
pub fn fig7() -> CatalogEntry {
    let test = LitmusBuilder::new("fig7")
        .thread("A", |t| {
            t.store("x", 1).fence().store("y", 3).load("r6", "y");
        })
        .thread("B", |t| {
            t.store("y", 4).fence().load("r5", "x");
        })
        .thread("C", |t| {
            t.store("x", 2);
        })
        .allow(&[("A", "r6", 4), ("B", "r5", 2)])
        .allow(&[("A", "r6", 3), ("B", "r5", 1)])
        .build()
        .expect("fig7 compiles");
    let mut verdicts = Vec::new();
    for model in [Sc, NaiveTso, Tso, Pso, Weak, WeakSpec] {
        verdicts.push((0, model, true));
        verdicts.push((1, model, true));
    }
    CatalogEntry::new(
        test,
        "Figure 7: enforcing Store Atomicity on one location exposes edges \
         on another; the drawn execution is consistent in every model",
        &verdicts,
    )
}

/// Figure 8 — address-aliasing speculation alters program behaviour.
///
/// Thread A: `S1 x,&w; fence; S2 y,2; S4 y,4; fence; S5 x,&z`.
/// Thread B: `L3 y; fence; r6 = L6 x; S7 [r6],7; r8 = L8 y`.
///
/// Non-speculatively, `L6 ≺ L8` (the producer of `S7`'s address), so
/// `S2 @ S4 @ L8` whenever `L6 x = &z`: `L8 y = 2` is impossible. With
/// aliasing speculation the dependency is dropped and `L8 y = 2` becomes
/// observable — a behaviour only speculation allows.
pub fn fig8() -> CatalogEntry {
    let mut builder = LitmusBuilder::new("fig8")
        .thread("A", |t| {
            t.store_addr_of("x", "w")
                .fence()
                .store("y", 2)
                .store("y", 4)
                .fence()
                .store_addr_of("x", "z");
        })
        .thread("B", |t| {
            t.load("r3", "y")
                .fence()
                .load("r6", "x")
                .store_via("r6", 7)
                .load("r8", "y");
        });
    // Condition 0: L3 = 2, L6 = &z, L8 = 2 (the new speculative behaviour).
    builder = builder.allow_with_addr(&[("B", "r3", 2), ("B", "r8", 2)], ("B", "r6", "z"));
    // Condition 1: L3 = 2, L6 = &z, L8 = 4 (valid in both modes).
    builder = builder.allow_with_addr(&[("B", "r3", 2), ("B", "r8", 4)], ("B", "r6", "z"));
    let test = builder.build().expect("fig8 compiles");
    CatalogEntry::new(
        test,
        "Figure 8/9: dropping the address-disambiguation dependency \
         L6 ≺ L8 admits L8 y = 2, a behaviour impossible non-speculatively",
        &[
            // The new behaviour needs speculation.
            (0, Sc, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, false),
            (0, WeakSpec, true),
            // The ordinary behaviour exists in both modes.
            (1, Weak, true),
            (1, WeakSpec, true),
            (1, Sc, true),
        ],
    )
}

/// Figure 10 — an execution which obeys TSO but violates memory atomicity.
///
/// Thread A: `S1 x,1; S2 x,2; S3 z,3; L4 z; L6 y`.
/// Thread B: `S5 y,5; S7 y,7; S8 z,8; L9 z; L10 x`.
///
/// The outcome `L4 = 3, L6 = 5, L9 = 8, L10 = 1` requires both loads of
/// `z` to be satisfied from the local store pipeline. Correct TSO (with
/// gray bypass edges) and the weak model allow it; naive store→load
/// reordering — Figure 11 (center) — derives `S1 @ S2 @ L10` and forbids
/// it, as does SC.
pub fn fig10() -> CatalogEntry {
    let test = LitmusBuilder::new("fig10")
        .thread("A", |t| {
            t.store("x", 1)
                .store("x", 2)
                .store("z", 3)
                .load("r4", "z")
                .load("r6", "y");
        })
        .thread("B", |t| {
            t.store("y", 5)
                .store("y", 7)
                .store("z", 8)
                .load("r9", "z")
                .load("r10", "x");
        })
        .allow(&[
            ("A", "r4", 3),
            ("A", "r6", 5),
            ("B", "r9", 8),
            ("B", "r10", 1),
        ])
        .build()
        .expect("fig10 compiles");
    CatalogEntry::new(
        test,
        "Figure 10/11: the store-buffer-bypass execution obeys TSO but \
         violates memory atomicity; naive reordering rules forbid it",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, true),
            (0, Pso, true),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_compile_with_paper_register_names() {
        let f3 = fig3();
        assert!(f3.test.regs[0].contains_key("r5"));
        assert!(f3.test.regs[1].contains_key("r6"));
        let f10 = fig10();
        assert!(f10.test.regs[0].contains_key("r4"));
        assert!(f10.test.regs[1].contains_key("r10"));
    }

    #[test]
    fn fig8_condition_references_address_of_z() {
        let f8 = fig8();
        let z = f8.test.addr("z");
        // The compiled condition's r6 clause must expect the address of z.
        let cond = &f8.test.conditions[0];
        let r6 = f8.test.reg(1, "r6");
        let clause = cond
            .clauses
            .iter()
            .find(|&&(t, r, _)| t == 1 && r == r6)
            .expect("r6 clause present");
        assert_eq!(clause.2, samm_core::ids::Value::from(z));
    }

    #[test]
    fn fig5_has_three_threads() {
        assert_eq!(fig5().test.program.threads().len(), 3);
        assert_eq!(fig7().test.program.threads().len(), 3);
    }
}
