//! The classic litmus-test suite, with per-model verdicts.
//!
//! These are the standard shapes of the memory-model literature (Adve &
//! Gharachorloo's tutorial, the herd suite): store buffering, message
//! passing, load buffering, coherence-of-reads, IRIW and write-to-read
//! causality — each with and without fences where the contrast is
//! interesting. The expected verdicts follow directly from the paper's
//! reordering table (Figure 1) plus Store Atomicity.

use super::{CatalogEntry, ModelSel};
use crate::builder::LitmusBuilder;

use ModelSel::{NaiveTso, Pso, Sc, Tso, Weak, WeakSpec};

/// Store buffering (Dekker): may both threads miss each other's store?
pub fn sb() -> CatalogEntry {
    let test = LitmusBuilder::new("SB")
        .thread("P0", |t| {
            t.store("x", 1).load("r0", "y");
        })
        .thread("P1", |t| {
            t.store("y", 1).load("r0", "x");
        })
        .forbid(&[("P0", "r0", 0), ("P1", "r0", 0)])
        .build()
        .expect("SB compiles");
    CatalogEntry::new(
        test,
        "store buffering: the hallmark store->load relaxation",
        &[
            (0, Sc, false),
            (0, NaiveTso, true),
            (0, Tso, true),
            (0, Pso, true),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// Store buffering with full fences: SC-like everywhere.
pub fn sb_fenced() -> CatalogEntry {
    let test = LitmusBuilder::new("SB+fences")
        .thread("P0", |t| {
            t.store("x", 1).fence().load("r0", "y");
        })
        .thread("P1", |t| {
            t.store("y", 1).fence().load("r0", "x");
        })
        .forbid(&[("P0", "r0", 0), ("P1", "r0", 0)])
        .build()
        .expect("SB+fences compiles");
    CatalogEntry::new(
        test,
        "fences restore SC for store buffering in every model",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, false),
            (0, WeakSpec, false),
        ],
    )
}

/// Message passing: data published before a flag.
pub fn mp() -> CatalogEntry {
    let test = LitmusBuilder::new("MP")
        .thread("P0", |t| {
            t.store("x", 42).store("flag", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "flag").load("r1", "x");
        })
        .forbid(&[("P1", "r0", 1), ("P1", "r1", 0)])
        .build()
        .expect("MP compiles");
    CatalogEntry::new(
        test,
        "message passing: needs store->store and load->load order",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, true),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// Message passing with fences on both sides: safe everywhere.
pub fn mp_fenced() -> CatalogEntry {
    let test = LitmusBuilder::new("MP+fences")
        .thread("P0", |t| {
            t.store("x", 42).fence().store("flag", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "flag").fence().load("r1", "x");
        })
        .forbid(&[("P1", "r0", 1), ("P1", "r1", 0)])
        .build()
        .expect("MP+fences compiles");
    CatalogEntry::new(
        test,
        "fenced message passing is safe in every model",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, false),
            (0, WeakSpec, false),
        ],
    )
}

/// Fenced message passing with extra thread-private scratch traffic:
/// still safe everywhere, but *not* certifiable by the DRF/TLO shapes —
/// the program races on `x`/`flag`, and each thread's scratch accesses
/// stay unordered with its fenced core (store→store under PSO/Weak, the
/// store→load bypass pair under TSO). Only the robustness analysis sees
/// that the scratch locations carry no cross-thread conflict and every
/// conflicting segment is fenced. This is the certified-fast-path bench
/// subject of EXPERIMENTS E24.
pub fn mp_fenced_scratch() -> CatalogEntry {
    let test = LitmusBuilder::new("MP+fences+scratch")
        .thread("P0", |t| {
            t.store("x", 42)
                .fence()
                .store("flag", 1)
                .store("s0", 7)
                .load("r2", "s0");
        })
        .thread("P1", |t| {
            t.load("r0", "flag")
                .fence()
                .load("r1", "x")
                .store("s1", 9)
                .load("r2", "s1");
        })
        .forbid(&[("P1", "r0", 1), ("P1", "r1", 0)])
        .build()
        .expect("MP+fences+scratch compiles");
    CatalogEntry::new(
        test,
        "fenced MP with private scratch traffic: robust everywhere, yet \
         neither data-race-free nor totally locally ordered",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, false),
            (0, WeakSpec, false),
        ],
    )
}

/// Message passing fenced only on the producer side: the consumer's loads
/// may still reorder under the weak model, but every buffer-based model
/// keeps them in order — this separates Weak from PSO.
pub fn mp_fence_producer_only() -> CatalogEntry {
    let test = LitmusBuilder::new("MP+wfence")
        .thread("P0", |t| {
            t.store("x", 42).fence().store("flag", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "flag").load("r1", "x");
        })
        .forbid(&[("P1", "r0", 1), ("P1", "r1", 0)])
        .build()
        .expect("MP+wfence compiles");
    CatalogEntry::new(
        test,
        "producer-only fence: safe wherever loads stay ordered (everything \
         but the weak model)",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// Message passing fenced only on the consumer side: the producer's
/// stores may still reorder under PSO and the weak model — this separates
/// TSO from PSO.
pub fn mp_fence_consumer_only() -> CatalogEntry {
    let test = LitmusBuilder::new("MP+rfence")
        .thread("P0", |t| {
            t.store("x", 42).store("flag", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "flag").fence().load("r1", "x");
        })
        .forbid(&[("P1", "r0", 1), ("P1", "r1", 0)])
        .build()
        .expect("MP+rfence compiles");
    CatalogEntry::new(
        test,
        "consumer-only fence: safe wherever stores stay ordered (SC and \
         TSO), broken once store->store relaxes (PSO, Weak)",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, true),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// Load buffering: loads bypassing later stores.
pub fn lb() -> CatalogEntry {
    let test = LitmusBuilder::new("LB")
        .thread("P0", |t| {
            t.load("r0", "x").store("y", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "y").store("x", 1);
        })
        .forbid(&[("P0", "r0", 1), ("P1", "r0", 1)])
        .build()
        .expect("LB compiles");
    CatalogEntry::new(
        test,
        "load buffering: only the weak model reorders load->store",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// Load buffering with data dependencies: out-of-thin-air values are
/// forbidden in every model — the stored value depends on the load.
pub fn lb_data() -> CatalogEntry {
    let test = LitmusBuilder::new("LB+data")
        .thread("P0", |t| {
            t.load("r0", "x").store_reg("y", "r0");
        })
        .thread("P1", |t| {
            t.load("r0", "y").store_reg("x", "r0");
        })
        .forbid(&[("P0", "r0", 1), ("P1", "r0", 1)])
        .build()
        .expect("LB+data compiles");
    CatalogEntry::new(
        test,
        "data dependencies forbid out-of-thin-air load buffering everywhere",
        &[
            (0, Sc, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, false),
            (0, WeakSpec, false),
        ],
    )
}

/// Coherence of read-read: two loads of the same location in one thread.
pub fn corr() -> CatalogEntry {
    let test = LitmusBuilder::new("CoRR")
        .thread("P0", |t| {
            t.store("x", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "x").load("r1", "x");
        })
        .forbid(&[("P1", "r0", 1), ("P1", "r1", 0)])
        .build()
        .expect("CoRR compiles");
    CatalogEntry::new(
        test,
        "read-read coherence: Figure 1 leaves same-address load pairs \
         unordered, so the weak model allows the inversion",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// Independent reads of independent writes.
pub fn iriw() -> CatalogEntry {
    let test = LitmusBuilder::new("IRIW")
        .thread("P0", |t| {
            t.store("x", 1);
        })
        .thread("P1", |t| {
            t.store("y", 1);
        })
        .thread("P2", |t| {
            t.load("r0", "x").load("r1", "y");
        })
        .thread("P3", |t| {
            t.load("r0", "y").load("r1", "x");
        })
        .forbid(&[
            ("P2", "r0", 1),
            ("P2", "r1", 0),
            ("P3", "r0", 1),
            ("P3", "r1", 0),
        ])
        .build()
        .expect("IRIW compiles");
    CatalogEntry::new(
        test,
        "IRIW without fences: unordered observer loads may disagree",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// IRIW with fenced observers: Store Atomicity (rule c) forbids the
/// disagreement in *every* store-atomic model — the signature property this
/// framework enforces and cache coherence implements.
pub fn iriw_fenced() -> CatalogEntry {
    let test = LitmusBuilder::new("IRIW+fences")
        .thread("P0", |t| {
            t.store("x", 1);
        })
        .thread("P1", |t| {
            t.store("y", 1);
        })
        .thread("P2", |t| {
            t.load("r0", "x").fence().load("r1", "y");
        })
        .thread("P3", |t| {
            t.load("r0", "y").fence().load("r1", "x");
        })
        .forbid(&[
            ("P2", "r0", 1),
            ("P2", "r1", 0),
            ("P3", "r0", 1),
            ("P3", "r1", 0),
        ])
        .build()
        .expect("IRIW+fences compiles");
    CatalogEntry::new(
        test,
        "IRIW with fences: Store Atomicity forbids observers disagreeing \
         on the store order in every atomic model",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, false),
            (0, WeakSpec, false),
        ],
    )
}

/// Write-to-read causality.
pub fn wrc() -> CatalogEntry {
    let test = LitmusBuilder::new("WRC")
        .thread("P0", |t| {
            t.store("x", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "x").store("y", 1);
        })
        .thread("P2", |t| {
            t.load("r1", "y").load("r2", "x");
        })
        .forbid(&[("P1", "r0", 1), ("P2", "r1", 1), ("P2", "r2", 0)])
        .build()
        .expect("WRC compiles");
    CatalogEntry::new(
        test,
        "write-to-read causality: broken only by the weak model's \
         load->store and load->load relaxations",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

/// WRC with fences: causality restored in every store-atomic model.
pub fn wrc_fenced() -> CatalogEntry {
    let test = LitmusBuilder::new("WRC+fences")
        .thread("P0", |t| {
            t.store("x", 1);
        })
        .thread("P1", |t| {
            t.load("r0", "x").fence().store("y", 1);
        })
        .thread("P2", |t| {
            t.load("r1", "y").fence().load("r2", "x");
        })
        .forbid(&[("P1", "r0", 1), ("P2", "r1", 1), ("P2", "r2", 0)])
        .build()
        .expect("WRC+fences compiles");
    CatalogEntry::new(
        test,
        "fenced write-to-read causality holds in every store-atomic model \
         (store atomicity is cumulative)",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, false),
            (0, WeakSpec, false),
        ],
    )
}
