//! The litmus-test catalog: classic shapes plus every figure of the paper.
//!
//! Each [`CatalogEntry`] bundles a compiled test with per-model *verdicts*:
//! which of its conditions must be observable (allowed) or unobservable
//! (forbidden) under which memory model. The expectation harness in
//! [`crate::expect`] turns the catalog into an executable conformance
//! suite, and the benchmark crate replays it to regenerate the paper's
//! figures.

mod atomics;
mod classic;
mod figures;

pub use atomics::{atomic_increment, broken_increment, cas_mutex, swap_sb};
pub use classic::{
    corr, iriw, iriw_fenced, lb, lb_data, mp, mp_fence_consumer_only, mp_fence_producer_only,
    mp_fenced, mp_fenced_scratch, sb, sb_fenced, wrc, wrc_fenced,
};
pub use figures::{fig10, fig3, fig4, fig5, fig7, fig8};

use samm_core::policy::Policy;

use crate::ast::CompiledLitmus;

/// The memory models the catalog takes verdicts over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelSel {
    /// Sequential Consistency.
    Sc,
    /// The broken TSO of Figure 11 (center): store→load reordering with a
    /// plain same-address edge, no bypass.
    NaiveTso,
    /// Total Store Order with the correct store-buffer bypass (section 6).
    Tso,
    /// Partial Store Order (TSO plus store→store reordering).
    Pso,
    /// The paper's weak model (Figure 1).
    Weak,
    /// The weak model with address-aliasing speculation (section 5).
    WeakSpec,
}

impl ModelSel {
    /// All models, strongest first.
    pub const ALL: [ModelSel; 6] = [
        ModelSel::Sc,
        ModelSel::NaiveTso,
        ModelSel::Tso,
        ModelSel::Pso,
        ModelSel::Weak,
        ModelSel::WeakSpec,
    ];

    /// The store-atomic models that form the inclusion chain
    /// `SC ⊆ TSO ⊆ PSO ⊆ Weak ⊆ Weak+spec` (naive TSO is *not* in the
    /// chain — that is the point of Figure 11).
    pub const CHAIN: [ModelSel; 5] = [
        ModelSel::Sc,
        ModelSel::Tso,
        ModelSel::Pso,
        ModelSel::Weak,
        ModelSel::WeakSpec,
    ];

    /// Instantiates the policy for this model.
    pub fn policy(self) -> Policy {
        match self {
            ModelSel::Sc => Policy::sequential_consistency(),
            ModelSel::NaiveTso => Policy::naive_tso(),
            ModelSel::Tso => Policy::tso(),
            ModelSel::Pso => Policy::pso(),
            ModelSel::Weak => Policy::weak(),
            ModelSel::WeakSpec => Policy::weak().with_alias_speculation(true),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelSel::Sc => "SC",
            ModelSel::NaiveTso => "NaiveTSO",
            ModelSel::Tso => "TSO",
            ModelSel::Pso => "PSO",
            ModelSel::Weak => "Weak",
            ModelSel::WeakSpec => "Weak+spec",
        }
    }
}

impl std::fmt::Display for ModelSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One expected verdict: under `model`, condition `condition` of the test
/// is observable iff `allowed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Index into the test's `conditions`.
    pub condition: usize,
    /// The model the verdict applies to.
    pub model: ModelSel,
    /// Whether the condition must be observable.
    pub allowed: bool,
}

/// A catalog entry: a compiled test plus its expected per-model verdicts.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The compiled litmus test.
    pub test: CompiledLitmus,
    /// What the entry demonstrates (one line).
    pub description: String,
    /// Expected verdicts.
    pub verdicts: Vec<Verdict>,
}

impl CatalogEntry {
    /// Builds an entry; `verdicts` rows are `(condition, model, allowed)`.
    pub fn new(
        test: CompiledLitmus,
        description: &str,
        verdicts: &[(usize, ModelSel, bool)],
    ) -> Self {
        for &(condition, _, _) in verdicts {
            assert!(
                condition < test.conditions.len(),
                "verdict references condition {condition} but `{}` has {}",
                test.name,
                test.conditions.len()
            );
        }
        CatalogEntry {
            test,
            description: description.to_owned(),
            verdicts: verdicts
                .iter()
                .map(|&(condition, model, allowed)| Verdict {
                    condition,
                    model,
                    allowed,
                })
                .collect(),
        }
    }

    /// The distinct models this entry has verdicts for.
    pub fn models(&self) -> Vec<ModelSel> {
        let mut models: Vec<ModelSel> = self.verdicts.iter().map(|v| v.model).collect();
        models.sort();
        models.dedup();
        models
    }
}

/// Every entry of the catalog: the classic suite plus the paper's figures.
pub fn all() -> Vec<CatalogEntry> {
    vec![
        sb(),
        sb_fenced(),
        mp(),
        mp_fenced(),
        mp_fenced_scratch(),
        mp_fence_producer_only(),
        mp_fence_consumer_only(),
        lb(),
        lb_data(),
        corr(),
        iriw(),
        iriw_fenced(),
        wrc(),
        wrc_fenced(),
        cas_mutex(),
        atomic_increment(),
        broken_increment(),
        swap_sb(),
        fig3(),
        fig4(),
        fig5(),
        fig7(),
        fig8(),
        fig10(),
    ]
}

/// The subset of [`all`] that reproduces the paper's figures.
pub fn paper_figures() -> Vec<CatalogEntry> {
    vec![fig3(), fig4(), fig5(), fig7(), fig8(), fig10()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_formed() {
        let entries = all();
        assert!(entries.len() >= 17);
        for e in &entries {
            assert!(!e.test.name.is_empty());
            assert!(!e.description.is_empty());
            assert!(!e.verdicts.is_empty(), "{} has no verdicts", e.test.name);
            assert!(!e.test.conditions.is_empty());
            assert!(!e.models().is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let entries = all();
        let mut names: Vec<&str> = entries.iter().map(|e| e.test.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn model_policies_have_matching_names() {
        for model in ModelSel::ALL {
            let policy = model.policy();
            assert_eq!(policy.name(), model.name());
        }
    }

    #[test]
    fn chain_excludes_naive_tso() {
        assert!(!ModelSel::CHAIN.contains(&ModelSel::NaiveTso));
        assert_eq!(ModelSel::CHAIN.len(), 5);
    }
}
