//! Atomic read-modify-write litmus tests (the paper's section-8 extension:
//! "atomic memory primitives such as Compare and Swap which atomically
//! combine Load and Store actions").
//!
//! In the graph framework an RMW is one node with both a Load and a Store
//! facet; Store Atomicity rules a and b then yield RMW atomicity with no
//! extra machinery — two competing RMWs observing the same source
//! contradict each other through rule b, so "both succeed" outcomes are
//! cycles. These entries check exactly that, and the paper's suggested use
//! ("to check that a locking algorithm meets its specification").

use super::{CatalogEntry, ModelSel};
use crate::builder::LitmusBuilder;

use ModelSel::{NaiveTso, Pso, Sc, Tso, Weak, WeakSpec};

/// Test-and-set mutual exclusion: two threads race a CAS on a lock word.
/// At most one may observe the initial value — in *every* model.
pub fn cas_mutex() -> CatalogEntry {
    let test = LitmusBuilder::new("CAS-mutex")
        .thread("P0", |t| {
            t.cas("r0", "lock", 0, 1);
        })
        .thread("P1", |t| {
            t.cas("r0", "lock", 0, 1);
        })
        .forbid(&[("P0", "r0", 0), ("P1", "r0", 0)])
        .allow(&[("P0", "r0", 0), ("P1", "r0", 1)])
        .allow(&[("P0", "r0", 1), ("P1", "r0", 0)])
        .build()
        .expect("CAS-mutex compiles");
    let mut verdicts = Vec::new();
    for model in [Sc, NaiveTso, Tso, Pso, Weak, WeakSpec] {
        verdicts.push((0, model, false));
        verdicts.push((1, model, true));
        verdicts.push((2, model, true));
    }
    CatalogEntry::new(
        test,
        "compare-and-swap is atomic: both threads acquiring the lock is a \
         Store Atomicity cycle in every model",
        &verdicts,
    )
}

/// Two atomic fetch-and-adds on a counter: the observed old values must
/// be distinct ({0,1} in some order), never both 0 and never both 1.
pub fn atomic_increment() -> CatalogEntry {
    let test = LitmusBuilder::new("FAA-incr")
        .thread("P0", |t| {
            t.fetch_add("r0", "c", 1);
        })
        .thread("P1", |t| {
            t.fetch_add("r0", "c", 1);
        })
        .forbid(&[("P0", "r0", 0), ("P1", "r0", 0)])
        .forbid(&[("P0", "r0", 1), ("P1", "r0", 1)])
        .allow(&[("P0", "r0", 0), ("P1", "r0", 1)])
        .allow(&[("P0", "r0", 1), ("P1", "r0", 0)])
        .build()
        .expect("FAA-incr compiles");
    let mut verdicts = Vec::new();
    for model in [Sc, NaiveTso, Tso, Pso, Weak, WeakSpec] {
        verdicts.push((0, model, false));
        verdicts.push((1, model, false));
        verdicts.push((2, model, true));
        verdicts.push((3, model, true));
    }
    CatalogEntry::new(
        test,
        "atomic increments serialize: the two fetch-and-adds observe \
         distinct old values in every model",
        &verdicts,
    )
}

/// The broken (non-atomic) counterpart of [`atomic_increment`]: a plain
/// load/add/store sequence races, and *both* threads may read 0 — even
/// under Sequential Consistency. The lost update is a data race, not a
/// memory-model artifact.
pub fn broken_increment() -> CatalogEntry {
    let test = LitmusBuilder::new("broken-incr")
        .thread("P0", |t| {
            t.load("r0", "c")
                .binop(
                    "r1",
                    samm_core::instr::BinOp::Add,
                    crate::ast::SymOperand::reg("r0"),
                    1.into(),
                )
                .store_reg("c", "r1");
        })
        .thread("P1", |t| {
            t.load("r0", "c")
                .binop(
                    "r1",
                    samm_core::instr::BinOp::Add,
                    crate::ast::SymOperand::reg("r0"),
                    1.into(),
                )
                .store_reg("c", "r1");
        })
        .allow(&[("P0", "r0", 0), ("P1", "r0", 0)])
        .build()
        .expect("broken-incr compiles");
    let mut verdicts = Vec::new();
    for model in [Sc, Tso, Pso, Weak, WeakSpec] {
        verdicts.push((0, model, true));
    }
    CatalogEntry::new(
        test,
        "the non-atomic load/add/store increment races even under SC — \
         the contrast that motivates atomic primitives",
        &verdicts,
    )
}

/// Store buffering with atomic exchanges: `swap` drains the store buffer
/// (acts like a locked instruction), so TSO forbids the 0/0 outcome that
/// plain SB allows — while the weak model still reorders the trailing
/// loads.
pub fn swap_sb() -> CatalogEntry {
    let test = LitmusBuilder::new("SB+swap")
        .thread("P0", |t| {
            t.swap("r0", "x", 1).load("r1", "y");
        })
        .thread("P1", |t| {
            t.swap("r0", "y", 1).load("r1", "x");
        })
        .forbid(&[("P0", "r1", 0), ("P1", "r1", 0)])
        .build()
        .expect("SB+swap compiles");
    CatalogEntry::new(
        test,
        "atomic exchange restores SC for store buffering under TSO/PSO \
         (locked instructions drain the buffer); the weak model still \
         reorders the loads",
        &[
            (0, Sc, false),
            (0, NaiveTso, false),
            (0, Tso, false),
            (0, Pso, false),
            (0, Weak, true),
            (0, WeakSpec, true),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::enumerate::{enumerate, EnumConfig};
    use samm_core::policy::Policy;

    #[test]
    fn cas_mutex_outcomes_under_weak() {
        let entry = cas_mutex();
        let r = enumerate(&entry.test.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        // Exactly the two single-winner outcomes.
        assert_eq!(r.outcomes.len(), 2, "{}", r.outcomes);
        assert!(
            r.stats.rolled_back > 0,
            "the both-win fork must be rejected"
        );
    }

    #[test]
    fn faa_old_values_partition() {
        let entry = atomic_increment();
        let r = enumerate(&entry.test.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 2);
    }

    #[test]
    fn rmw_programs_are_detected() {
        assert!(cas_mutex().test.program.uses_rmw());
        assert!(!super::super::sb().test.program.uses_rmw());
    }
}
