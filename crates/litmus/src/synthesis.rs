//! Exhaustive litmus-test synthesis: every program of a small template
//! family, for *complete* small-world model comparison.
//!
//! Random corpora sample the program space; synthesis covers it. For a
//! bounded shape — `threads × ops_per_thread` slots, each a store, a load
//! or (optionally) a fence over a few locations — the generator emits
//! every distinct program. Sweeping the full family and diffing outcome
//! sets per model pair yields tables like "of all 256 two-by-two
//! programs, SC and TSO differ on N" — the systematic counterpart of the
//! paper's hand-picked examples.

use samm_core::cache::{cached_enumerate, EnumCache};
use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::ids::{Reg, Value};
use samm_core::instr::{Instr, Operand, Program, ThreadProgram};
use samm_core::outcome::OutcomeSet;
use samm_core::policy::Policy;

/// Shape of the synthesized family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of threads.
    pub threads: usize,
    /// Instruction slots per thread.
    pub ops_per_thread: usize,
    /// Number of distinct locations.
    pub locations: u64,
    /// Include a fence alternative in every slot.
    pub include_fences: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            threads: 2,
            ops_per_thread: 2,
            locations: 2,
            include_fences: false,
        }
    }
}

/// One slot choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Store(u64),
    Load(u64),
    Fence,
}

impl SynthConfig {
    fn slot_choices(&self) -> Vec<Slot> {
        let mut out = Vec::new();
        for a in 0..self.locations {
            out.push(Slot::Store(a));
            out.push(Slot::Load(a));
        }
        if self.include_fences {
            out.push(Slot::Fence);
        }
        out
    }

    /// Number of programs in the family.
    pub fn family_size(&self) -> usize {
        self.slot_choices()
            .len()
            .pow((self.threads * self.ops_per_thread) as u32)
    }
}

/// Iterator over every program of the family, in a stable order.
///
/// Stores write globally unique values (their slot's ordinal), so outcome
/// sets distinguish sources.
///
/// # Examples
///
/// ```
/// use samm_litmus::synthesis::{programs, SynthConfig};
/// let family: Vec<_> = programs(&SynthConfig::default()).collect();
/// assert_eq!(family.len(), 256); // (2 locations × 2 kinds)^(2×2)
/// ```
pub fn programs(config: &SynthConfig) -> impl Iterator<Item = Program> {
    let choices = config.slot_choices();
    let slots = config.threads * config.ops_per_thread;
    let total = config.family_size();
    let config = *config;
    (0..total).map(move |mut index| {
        let mut picked = Vec::with_capacity(slots);
        for _ in 0..slots {
            picked.push(choices[index % choices.len()]);
            index /= choices.len();
        }
        build_program(&config, &picked)
    })
}

fn build_program(config: &SynthConfig, picked: &[Slot]) -> Program {
    let mut threads = Vec::with_capacity(config.threads);
    let mut unique = 1u64;
    for t in 0..config.threads {
        let mut instrs = Vec::with_capacity(config.ops_per_thread);
        let mut regs = 0usize;
        for s in 0..config.ops_per_thread {
            match picked[t * config.ops_per_thread + s] {
                Slot::Store(a) => {
                    instrs.push(Instr::Store {
                        addr: Operand::Imm(Value::new(a)),
                        val: Operand::Imm(Value::new(unique)),
                    });
                    unique += 1;
                }
                Slot::Load(a) => {
                    instrs.push(Instr::Load {
                        dst: Reg::new(regs),
                        addr: Operand::Imm(Value::new(a)),
                    });
                    regs += 1;
                }
                Slot::Fence => instrs.push(Instr::Fence),
            }
        }
        threads.push(ThreadProgram::new(instrs));
    }
    Program::new(threads)
}

/// Summary of a model-pair sweep over a family.
#[derive(Debug, Clone, Default)]
pub struct DiffSummary {
    /// Programs examined.
    pub programs: usize,
    /// Programs where the two models' outcome sets differ.
    pub differing: usize,
    /// Index (in [`programs`] order) of the first differing
    /// program, if any — an exemplar for inspection.
    pub first_exemplar: Option<usize>,
}

/// Sweeps a family and counts programs where `stronger` and `weaker`
/// disagree; also checks the inclusion `stronger ⊆ weaker` on every
/// program.
///
/// # Panics
///
/// Panics if inclusion is violated (a model bug) or enumeration fails.
pub fn diff_models(config: &SynthConfig, stronger: &Policy, weaker: &Policy) -> DiffSummary {
    diff_models_impl(config, stronger, weaker, None)
}

/// Like [`diff_models`], but routing every enumeration through the
/// content-addressed `cache`. Sweeping a model *chain* (SC/TSO, TSO/PSO,
/// PSO/Weak) with one shared cache enumerates each (program, model) pair
/// once instead of once per pair containing the model — the middle
/// models' enumerations become hits on their second appearance.
///
/// # Panics
///
/// As for [`diff_models`].
pub fn diff_models_cached(
    config: &SynthConfig,
    stronger: &Policy,
    weaker: &Policy,
    cache: &EnumCache,
) -> DiffSummary {
    diff_models_impl(config, stronger, weaker, Some(cache))
}

fn diff_models_impl(
    config: &SynthConfig,
    stronger: &Policy,
    weaker: &Policy,
    cache: Option<&EnumCache>,
) -> DiffSummary {
    let mut summary = DiffSummary::default();
    for (i, program) in programs(config).enumerate() {
        summary.programs += 1;
        if program_differs(i, &program, stronger, weaker, cache) {
            summary.differing += 1;
            if summary.first_exemplar.is_none() {
                summary.first_exemplar = Some(i);
            }
        }
    }
    summary
}

/// Like [`diff_models`], but sweeping the family on `workers` scoped
/// threads, each diffing a contiguous chunk of template indices with the
/// serial enumerator. The family is data-parallel — one program per
/// index — so chunking at the template level beats parallelising each
/// (tiny) enumeration. The merged summary is identical to
/// [`diff_models`]'s: counts are sums and `first_exemplar` is the
/// minimum over chunks.
///
/// # Panics
///
/// Panics if inclusion is violated (a model bug) or enumeration fails.
pub fn diff_models_parallel(
    config: &SynthConfig,
    stronger: &Policy,
    weaker: &Policy,
    workers: usize,
) -> DiffSummary {
    diff_models_parallel_impl(config, stronger, weaker, workers, None)
}

/// The cached variant of [`diff_models_parallel`]; the sharded
/// [`EnumCache`] is shared by all sweep workers. See
/// [`diff_models_cached`].
///
/// # Panics
///
/// As for [`diff_models`].
pub fn diff_models_parallel_cached(
    config: &SynthConfig,
    stronger: &Policy,
    weaker: &Policy,
    workers: usize,
    cache: &EnumCache,
) -> DiffSummary {
    diff_models_parallel_impl(config, stronger, weaker, workers, Some(cache))
}

fn diff_models_parallel_impl(
    config: &SynthConfig,
    stronger: &Policy,
    weaker: &Policy,
    workers: usize,
    cache: Option<&EnumCache>,
) -> DiffSummary {
    let family: Vec<Program> = programs(config).collect();
    let workers = workers.max(1).min(family.len().max(1));
    if workers <= 1 {
        return diff_models_impl(config, stronger, weaker, cache);
    }
    let chunk_len = family.len().div_ceil(workers);
    let partials: Vec<DiffSummary> = std::thread::scope(|scope| {
        let handles: Vec<_> = family
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, chunk)| {
                scope.spawn(move || {
                    let base = c * chunk_len;
                    let mut part = DiffSummary::default();
                    for (offset, program) in chunk.iter().enumerate() {
                        let i = base + offset;
                        part.programs += 1;
                        if program_differs(i, program, stronger, weaker, cache) {
                            part.differing += 1;
                            if part.first_exemplar.is_none() {
                                part.first_exemplar = Some(i);
                            }
                        }
                    }
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("diff worker panicked"))
            .collect()
    });
    let mut summary = DiffSummary::default();
    for part in partials {
        summary.programs += part.programs;
        summary.differing += part.differing;
        summary.first_exemplar = match (summary.first_exemplar, part.first_exemplar) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
    summary
}

/// Diffs one program of the family; panics on an inclusion violation.
fn program_differs(
    index: usize,
    program: &Program,
    stronger: &Policy,
    weaker: &Policy,
    cache: Option<&EnumCache>,
) -> bool {
    let enum_config = EnumConfig::builder().keep_executions(false).build();
    let outcomes = |policy: &Policy| -> OutcomeSet {
        match cache {
            Some(cache) => {
                cached_enumerate(cache, program, policy, &enum_config, enumerate)
                    .expect("enumeration succeeds")
                    .0
                    .outcomes
            }
            None => {
                enumerate(program, policy, &enum_config)
                    .expect("enumeration succeeds")
                    .outcomes
            }
        }
    };
    let a = outcomes(stronger);
    let b = outcomes(weaker);
    assert!(
        a.is_subset(&b),
        "program #{index}: {} ⊆ {} violated",
        stronger.name(),
        weaker.name()
    );
    a != b
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::policy::Policy;

    #[test]
    fn family_size_matches_enumeration() {
        let cfg = SynthConfig::default();
        assert_eq!(cfg.family_size(), 256);
        assert_eq!(programs(&cfg).count(), 256);
        let fenced = SynthConfig {
            include_fences: true,
            ..SynthConfig::default()
        };
        assert_eq!(fenced.family_size(), 625);
    }

    #[test]
    fn programs_are_distinct() {
        let cfg = SynthConfig::default();
        let mut seen = std::collections::HashSet::new();
        for p in programs(&cfg) {
            assert!(seen.insert(format!("{p:?}")), "duplicate program emitted");
        }
    }

    #[test]
    fn sb_is_in_the_family_and_separates_sc_from_tso() {
        // The family must contain a store-buffering shape, so SC and TSO
        // must differ on at least one program.
        let cfg = SynthConfig::default();
        let summary = diff_models(&cfg, &Policy::sequential_consistency(), &Policy::tso());
        assert!(summary.differing > 0);
        assert_eq!(summary.programs, 256);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let cfg = SynthConfig::default();
        let serial = diff_models(&cfg, &Policy::sequential_consistency(), &Policy::weak());
        for workers in [1, 2, 4, 7] {
            let par = diff_models_parallel(
                &cfg,
                &Policy::sequential_consistency(),
                &Policy::weak(),
                workers,
            );
            assert_eq!(par.programs, serial.programs, "workers={workers}");
            assert_eq!(par.differing, serial.differing, "workers={workers}");
            assert_eq!(
                par.first_exemplar, serial.first_exemplar,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn cached_sweep_matches_and_reuses_chain_middles() {
        let cfg = SynthConfig {
            threads: 2,
            ops_per_thread: 1,
            locations: 2,
            include_fences: false,
        };
        let cache = EnumCache::new(4096);
        let chain = [
            (Policy::sequential_consistency(), Policy::tso()),
            (Policy::tso(), Policy::pso()),
            (Policy::pso(), Policy::weak()),
        ];
        for (strong, weak) in &chain {
            let plain = diff_models(&cfg, strong, weak);
            let cached = diff_models_cached(&cfg, strong, weak, &cache);
            assert_eq!(plain.programs, cached.programs);
            assert_eq!(plain.differing, cached.differing);
            assert_eq!(plain.first_exemplar, cached.first_exemplar);
        }
        // TSO and PSO each appear in two pairs: their second sweep is
        // pure hits, so the chain does 4×16 lookups with ≥2×16 hits.
        let stats = cache.stats();
        assert!(
            stats.hits >= 2 * cfg.family_size() as u64,
            "expected the chain middles to hit, got {stats:?}"
        );
        // Parallel cached sweep agrees too.
        let par = diff_models_parallel_cached(&cfg, &Policy::tso(), &Policy::pso(), 4, &cache);
        let serial = diff_models(&cfg, &Policy::tso(), &Policy::pso());
        assert_eq!(par.differing, serial.differing);
        assert_eq!(par.first_exemplar, serial.first_exemplar);
    }

    #[test]
    fn identical_models_never_differ() {
        let cfg = SynthConfig {
            threads: 2,
            ops_per_thread: 1,
            locations: 2,
            include_fences: false,
        };
        let summary = diff_models(&cfg, &Policy::weak(), &Policy::weak());
        assert_eq!(summary.differing, 0);
    }

    #[test]
    fn single_op_threads_agree_across_all_models() {
        // With one memory op per thread there is nothing to reorder: all
        // models coincide on the whole family.
        let cfg = SynthConfig {
            threads: 2,
            ops_per_thread: 1,
            locations: 2,
            include_fences: false,
        };
        for (strong, weak) in [
            (Policy::sequential_consistency(), Policy::tso()),
            (Policy::tso(), Policy::pso()),
            (Policy::pso(), Policy::weak()),
        ] {
            let summary = diff_models(&cfg, &strong, &weak);
            assert_eq!(
                summary.differing,
                0,
                "{} vs {} must agree on single-op threads",
                strong.name(),
                weak.name()
            );
        }
    }
}
