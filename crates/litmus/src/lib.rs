//! # samm-litmus — litmus tests for the Store Atomicity framework
//!
//! Workloads for [`samm_core`]: a symbolic litmus-test representation with
//! named locations/registers/labels ([`ast`]), a fluent [`builder`], a text
//! [`parser`], a [`catalog`] containing the classic litmus suite *and every
//! worked figure of the paper* with expected per-model verdicts, the
//! conformance harness [`expect`] that checks those verdicts by exhaustive
//! enumeration, and a random-program generator [`rand_prog`] for property
//! tests and benchmarks.
//!
//! ## Example: check a paper figure
//!
//! ```
//! use samm_litmus::{catalog, expect};
//! use samm_core::enumerate::EnumConfig;
//!
//! let report = expect::run_entry(&catalog::fig3(), &EnumConfig::default()).unwrap();
//! assert!(report.all_pass(), "{report}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod builder;
pub mod catalog;
pub mod expect;
pub mod fences;
pub mod parser;
pub mod printer;
pub mod rand_prog;
pub mod synthesis;

pub use ast::{CompiledCondition, CompiledLitmus, CondKind, LitmusError, LitmusTest};
pub use builder::LitmusBuilder;
pub use catalog::{CatalogEntry, ModelSel, Verdict};
pub use expect::{
    run_all, run_entry, run_entry_cached, run_entry_cached_parallel, run_entry_certified,
    run_entry_certified_parallel, Certifier, EntryReport, VerdictRow,
};
pub use parser::{parse, ParseError};
