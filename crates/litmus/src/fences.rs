//! Fence synthesis: the prescriptive side of the framework.
//!
//! The paper's section 8 argues that "application programmers are better
//! served by a prescriptive programming discipline" than by descriptive
//! enumeration alone. This module turns the enumerator into such a tool:
//! given a program, a *forbidden* outcome condition and a memory model,
//! [`synthesize_fences`] searches for a **minimum-size** set of fence
//! insertions under which the condition becomes unobservable — i.e. it
//! answers "where do the barriers go?" mechanically.
//!
//! The search is exhaustive and breadth-first over insertion count, so the
//! returned fix is minimal; litmus-scale programs have a handful of
//! insertion slots, keeping the sweep cheap.

use samm_core::enumerate::{enumerate, EnumConfig, EnumResult};
use samm_core::error::EnumError;
use samm_core::instr::{Instr, Program, ThreadProgram};
use samm_core::parallel::enumerate_parallel;
use samm_core::policy::Policy;
use samm_core::static_order::fence_slot_is_vacuous;

use crate::ast::CompiledCondition;

/// An enumeration engine: the serial [`enumerate`] or the work-stealing
/// [`enumerate_parallel`].
type Engine = fn(&Program, &Policy, &EnumConfig) -> Result<EnumResult, EnumError>;

/// A fence-insertion point: *before* instruction `pos` of thread
/// `thread` (so `pos` ranges over `1..len`, between two instructions).
pub type FenceSlot = (usize, usize);

/// A successful synthesis: where the fences go and the repaired program.
#[derive(Debug, Clone)]
pub struct FenceFix {
    /// The chosen insertion points, in `(thread, position)` form against
    /// the *original* program's instruction indices.
    pub placements: Vec<FenceSlot>,
    /// The program with the fences inserted (branch targets remapped).
    pub program: Program,
}

/// Inserts a fence before instruction `pos` of `thread`, remapping branch
/// and jump targets across the insertion point.
///
/// # Panics
///
/// Panics if `pos` is zero or past the end (fences at the very start or
/// end of a thread cannot order anything).
pub fn insert_fence(thread: &ThreadProgram, pos: usize) -> ThreadProgram {
    assert!(
        pos >= 1 && pos < thread.len(),
        "fence slot must sit between two instructions"
    );
    let remap = |target: usize| if target >= pos { target + 1 } else { target };
    let mut instrs = Vec::with_capacity(thread.len() + 1);
    for (i, instr) in thread.instrs().iter().enumerate() {
        if i == pos {
            instrs.push(Instr::Fence);
        }
        instrs.push(match *instr {
            Instr::BranchNz { cond, target } => Instr::BranchNz {
                cond,
                target: remap(target),
            },
            Instr::Jump { target } => Instr::Jump {
                target: remap(target),
            },
            other => other,
        });
    }
    ThreadProgram::new(instrs)
}

/// All sensible insertion slots of a program (between consecutive
/// instructions of each thread).
pub fn fence_slots(program: &Program) -> Vec<FenceSlot> {
    let mut slots = Vec::new();
    for (t, thread) in program.threads().iter().enumerate() {
        for pos in 1..thread.len() {
            slots.push((t, pos));
        }
    }
    slots
}

/// The insertion slots where a fence could actually add ordering under
/// `policy`: [`fence_slots`] minus the provably *vacuous* ones (see
/// [`fence_slot_is_vacuous`] — slots where every memory pair the fence
/// would order is already guaranteed-ordered by the table). The
/// synthesizer only searches these, which is sound because a slot
/// vacuous in the base program stays vacuous after other fences are
/// added: extra fences only grow the guaranteed order.
pub fn useful_fence_slots(program: &Program, policy: &Policy) -> Vec<FenceSlot> {
    fence_slots(program)
        .into_iter()
        .filter(|&(t, pos)| !fence_slot_is_vacuous(&program.threads()[t], policy, pos))
        .collect()
}

/// Builds the program with fences at `placements` (positions given against
/// the original program; multiple fences per thread are supported).
fn apply_placements(program: &Program, placements: &[FenceSlot]) -> Program {
    let mut threads: Vec<ThreadProgram> = program.threads().to_vec();
    for (t, thread) in threads.iter_mut().enumerate() {
        // Insert back-to-front so earlier positions stay valid.
        let mut positions: Vec<usize> = placements
            .iter()
            .filter(|&&(pt, _)| pt == t)
            .map(|&(_, pos)| pos)
            .collect();
        positions.sort_unstable_by(|a, b| b.cmp(a));
        for pos in positions {
            *thread = insert_fence(thread, pos);
        }
    }
    Program::with_init(threads, program.init_entries().collect())
}

/// Searches for a minimum set of fence insertions (up to `max_fences`)
/// under which `forbidden` is unobservable in `policy`.
///
/// Returns `Ok(None)` when no fix of that size exists — e.g. a data race
/// that no fence can repair (the `broken-incr` catalog entry).
///
/// # Errors
///
/// Propagates enumeration failures.
///
/// # Examples
///
/// Repair store buffering under the weak model:
///
/// ```
/// use samm_litmus::{catalog, fences};
/// use samm_core::enumerate::EnumConfig;
/// use samm_core::policy::Policy;
///
/// let sb = catalog::sb();
/// let fix = fences::synthesize_fences(
///     &sb.test.program,
///     &sb.test.conditions[0],
///     &Policy::weak(),
///     2,
///     &EnumConfig::default(),
/// )
/// .unwrap()
/// .expect("SB is repairable with two fences");
/// assert_eq!(fix.placements.len(), 2);
/// ```
pub fn synthesize_fences(
    program: &Program,
    forbidden: &CompiledCondition,
    policy: &Policy,
    max_fences: usize,
    config: &EnumConfig,
) -> Result<Option<FenceFix>, EnumError> {
    synthesize_fences_with(program, forbidden, policy, max_fences, config, enumerate)
}

/// Like [`synthesize_fences`], but every candidate placement is
/// enumerated on the work-stealing pool
/// ([`enumerate_parallel`] with [`EnumConfig::parallelism`] workers).
/// The search order — and therefore the returned fix — is identical to
/// the serial synthesizer's, because the engines produce the same
/// outcome sets.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn synthesize_fences_parallel(
    program: &Program,
    forbidden: &CompiledCondition,
    policy: &Policy,
    max_fences: usize,
    config: &EnumConfig,
) -> Result<Option<FenceFix>, EnumError> {
    synthesize_fences_with(
        program,
        forbidden,
        policy,
        max_fences,
        config,
        enumerate_parallel,
    )
}

fn synthesize_fences_with(
    program: &Program,
    forbidden: &CompiledCondition,
    policy: &Policy,
    max_fences: usize,
    config: &EnumConfig,
    engine: Engine,
) -> Result<Option<FenceFix>, EnumError> {
    let config = EnumConfig {
        keep_executions: false,
        ..config.clone()
    };
    let slots = useful_fence_slots(program, policy);
    let mut chosen: Vec<FenceSlot> = Vec::new();
    for k in 0..=max_fences.min(slots.len()) {
        if let Some(fix) = search_k(
            program,
            forbidden,
            policy,
            &config,
            &slots,
            k,
            0,
            &mut chosen,
            engine,
        )? {
            return Ok(Some(fix));
        }
    }
    Ok(None)
}

/// Depth-first choice of exactly `k` more slots starting at `from`.
#[allow(clippy::too_many_arguments)]
fn search_k(
    program: &Program,
    forbidden: &CompiledCondition,
    policy: &Policy,
    config: &EnumConfig,
    slots: &[FenceSlot],
    k: usize,
    from: usize,
    chosen: &mut Vec<FenceSlot>,
    engine: Engine,
) -> Result<Option<FenceFix>, EnumError> {
    if k == 0 {
        let candidate = apply_placements(program, chosen);
        let outcomes = engine(&candidate, policy, config)?.outcomes;
        if !forbidden.observable_in(&outcomes) {
            return Ok(Some(FenceFix {
                placements: chosen.clone(),
                program: candidate,
            }));
        }
        return Ok(None);
    }
    for i in from..slots.len() {
        chosen.push(slots[i]);
        let found = search_k(
            program,
            forbidden,
            policy,
            config,
            slots,
            k - 1,
            i + 1,
            chosen,
            engine,
        )?;
        chosen.pop();
        if found.is_some() {
            return Ok(found);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use samm_core::policy::Policy;

    fn fix_for(
        entry: &crate::CatalogEntry,
        condition: usize,
        policy: &Policy,
        max: usize,
    ) -> Option<FenceFix> {
        synthesize_fences(
            &entry.test.program,
            &entry.test.conditions[condition],
            policy,
            max,
            &EnumConfig::default(),
        )
        .expect("enumeration succeeds")
    }

    #[test]
    fn sb_needs_exactly_two_fences_under_weak() {
        let entry = catalog::sb();
        assert!(
            fix_for(&entry, 0, &Policy::weak(), 1).is_none(),
            "one fence is not enough"
        );
        let fix = fix_for(&entry, 0, &Policy::weak(), 2).expect("two fences repair SB");
        assert_eq!(fix.placements.len(), 2);
        // One fence in each thread, between the store and the load.
        let threads: Vec<usize> = fix.placements.iter().map(|&(t, _)| t).collect();
        assert!(threads.contains(&0) && threads.contains(&1));
    }

    #[test]
    fn corr_needs_one_fence_under_weak() {
        let entry = catalog::corr();
        let fix = fix_for(&entry, 0, &Policy::weak(), 2).expect("CoRR is repairable");
        assert_eq!(
            fix.placements.len(),
            1,
            "a single fence between the loads suffices"
        );
        assert_eq!(
            fix.placements[0].0, 1,
            "the fence goes in the reader thread"
        );
    }

    #[test]
    fn already_forbidden_conditions_need_zero_fences() {
        let entry = catalog::sb();
        let fix = fix_for(&entry, 0, &Policy::sequential_consistency(), 2)
            .expect("SC already forbids the SB relaxation");
        assert!(fix.placements.is_empty());
    }

    #[test]
    fn data_races_cannot_be_fenced_away() {
        // broken-incr: both threads may read 0 even under SC; no fence
        // placement can forbid it.
        let entry = catalog::broken_increment();
        let fix = synthesize_fences(
            &entry.test.program,
            &entry.test.conditions[0],
            &Policy::weak(),
            4,
            &EnumConfig::default(),
        )
        .expect("enumeration succeeds");
        assert!(fix.is_none(), "a data race is not a fencing problem");
    }

    #[test]
    fn mp_fix_matches_the_catalog_fenced_variant() {
        let entry = catalog::mp();
        let fix = fix_for(&entry, 0, &Policy::weak(), 2).expect("MP is repairable");
        assert_eq!(fix.placements.len(), 2);
        // The synthesized program must agree with MP+fences: the condition
        // is forbidden under the weak model.
        let outcomes = enumerate(
            &fix.program,
            &Policy::weak(),
            &EnumConfig {
                keep_executions: false,
                ..EnumConfig::default()
            },
        )
        .unwrap()
        .outcomes;
        assert!(!entry.test.conditions[0].observable_in(&outcomes));
    }

    #[test]
    fn insert_fence_remaps_branch_targets() {
        use samm_core::ids::Reg;
        use samm_core::instr::Operand;
        let thread = ThreadProgram::new(vec![
            Instr::Load {
                dst: Reg::new(0),
                addr: 0u64.into(),
            },
            Instr::BranchNz {
                cond: Operand::Reg(Reg::new(0)),
                target: 3,
            },
            Instr::Store {
                addr: 1u64.into(),
                val: 1u64.into(),
            },
        ]);
        let fenced = insert_fence(&thread, 2);
        assert_eq!(fenced.len(), 4);
        assert!(matches!(fenced.instrs()[2], Instr::Fence));
        // The branch skipped to the end (3); after insertion the end is 4.
        assert!(matches!(
            fenced.instrs()[1],
            Instr::BranchNz { target: 4, .. }
        ));
    }

    #[test]
    fn parallel_synthesis_finds_the_same_fix() {
        let config = EnumConfig {
            parallelism: 4,
            ..EnumConfig::default()
        };
        for (entry, max) in [(catalog::sb(), 2), (catalog::mp(), 2), (catalog::corr(), 2)] {
            let serial = synthesize_fences(
                &entry.test.program,
                &entry.test.conditions[0],
                &Policy::weak(),
                max,
                &config,
            )
            .unwrap();
            let parallel = synthesize_fences_parallel(
                &entry.test.program,
                &entry.test.conditions[0],
                &Policy::weak(),
                max,
                &config,
            )
            .unwrap();
            match (serial, parallel) {
                (Some(s), Some(p)) => assert_eq!(
                    s.placements, p.placements,
                    "{}: engines must pick the same minimal fix",
                    entry.test.name
                ),
                (None, None) => {}
                (s, p) => panic!(
                    "{}: serial found {:?}, parallel found {:?}",
                    entry.test.name,
                    s.map(|f| f.placements),
                    p.map(|f| f.placements)
                ),
            }
        }
    }

    #[test]
    fn vacuous_slots_are_pruned_before_search() {
        // Under SC every memory pair is already Never-ordered, so every
        // fence slot is vacuous and the search space collapses to the
        // empty placement.
        let entry = catalog::sb();
        assert!(
            useful_fence_slots(&entry.test.program, &Policy::sequential_consistency()).is_empty()
        );
        // Under the weak model the SB slots (between each thread's store
        // and load) genuinely add ordering and must survive the filter.
        let useful = useful_fence_slots(&entry.test.program, &Policy::weak());
        assert_eq!(useful, fence_slots(&entry.test.program));
        // Under TSO the store→load pair is the only reorderable one, so
        // the SB slots stay useful there too.
        assert!(!useful_fence_slots(&entry.test.program, &Policy::tso()).is_empty());
    }

    #[test]
    fn pruned_search_still_reports_unfixable_races() {
        // Even with every slot pruned (SC), an observable condition must
        // still come back `None` rather than panic or mis-report.
        let entry = catalog::broken_increment();
        let fix = synthesize_fences(
            &entry.test.program,
            &entry.test.conditions[0],
            &Policy::sequential_consistency(),
            4,
            &EnumConfig::default(),
        )
        .expect("enumeration succeeds");
        assert!(fix.is_none());
    }

    #[test]
    fn pso_mp_needs_only_the_producer_fence() {
        // Under PSO only the store-store reordering breaks MP, so a single
        // fence (in the producer) suffices.
        let entry = catalog::mp();
        let fix = fix_for(&entry, 0, &Policy::pso(), 2).expect("MP is PSO-repairable");
        assert_eq!(fix.placements.len(), 1);
        assert_eq!(fix.placements[0].0, 0, "the fence goes in the producer");
    }
}
