//! Random litmus-program generation for property tests and benchmarks.
//!
//! The generator emits small, loop-free multithreaded programs over a few
//! shared locations — the space where exhaustive enumeration is feasible
//! and where cross-model properties (outcome-set inclusion, equivalence
//! with operational references, serializability of every execution) can be
//! checked mechanically.

use rand::prelude::*;

use samm_core::ids::{Reg, Value};
use samm_core::instr::{Instr, Operand, Program, ThreadProgram};

/// Shape parameters for [`random_program`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandConfig {
    /// Number of threads.
    pub threads: usize,
    /// Instructions per thread (exactly).
    pub ops_per_thread: usize,
    /// Number of distinct shared locations.
    pub locations: u64,
    /// Probability of a fence at each slot.
    pub fence_prob: f64,
    /// Probability that a slot is a store (vs. a load); the remainder
    /// after fences.
    pub store_prob: f64,
    /// Probability that a store's value is data-dependent on an earlier
    /// load (when one exists) rather than a constant.
    pub data_dep_prob: f64,
    /// Probability of a forward branch over the next instruction, keyed on
    /// an earlier load (when one exists).
    pub branch_prob: f64,
    /// Probability that a memory slot is an atomic read-modify-write
    /// (swap, fetch-add or CAS, chosen uniformly) instead of a plain
    /// load/store.
    pub rmw_prob: f64,
}

impl Default for RandConfig {
    fn default() -> Self {
        RandConfig {
            threads: 2,
            ops_per_thread: 4,
            locations: 2,
            fence_prob: 0.15,
            store_prob: 0.5,
            data_dep_prob: 0.25,
            branch_prob: 0.0,
            rmw_prob: 0.0,
        }
    }
}

/// Generates a random loop-free program.
///
/// Every store writes a globally unique value (its sequence number), so
/// distinct sources are always distinguishable in outcomes.
///
/// # Examples
///
/// ```
/// use samm_litmus::rand_prog::{random_program, RandConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let prog = random_program(&mut rng, &RandConfig::default());
/// assert_eq!(prog.threads().len(), 2);
/// ```
pub fn random_program<R: Rng + ?Sized>(rng: &mut R, config: &RandConfig) -> Program {
    let mut unique_value = 1u64;
    let mut threads = Vec::with_capacity(config.threads);
    for _ in 0..config.threads {
        let mut instrs: Vec<Instr> = Vec::with_capacity(config.ops_per_thread);
        let mut next_reg = 0usize;
        let mut loaded_regs: Vec<Reg> = Vec::new();
        let mut slots = 0usize;
        while slots < config.ops_per_thread {
            let addr = Operand::Imm(Value::new(rng.gen_range(0..config.locations)));
            if rng.gen_bool(config.fence_prob) {
                instrs.push(Instr::Fence);
                slots += 1;
                continue;
            }
            // Optional forward branch guarding the next instruction.
            if !loaded_regs.is_empty()
                && slots + 1 < config.ops_per_thread
                && rng.gen_bool(config.branch_prob)
            {
                let cond = *loaded_regs.choose(rng).expect("non-empty");
                // Branch over exactly one following instruction.
                instrs.push(Instr::BranchNz {
                    cond: Operand::Reg(cond),
                    target: instrs.len() + 2,
                });
                slots += 1;
                // Fall through to emit the guarded instruction below.
            }
            if rng.gen_bool(config.rmw_prob) {
                let dst = Reg::new(next_reg);
                next_reg += 1;
                loaded_regs.push(dst);
                let op = match rng.gen_range(0..3) {
                    0 => samm_core::instr::RmwOp::Swap,
                    1 => samm_core::instr::RmwOp::FetchAdd,
                    // Expect small values so CAS both succeeds and fails
                    // across interleavings.
                    _ => samm_core::instr::RmwOp::Cas {
                        expect: Operand::Imm(Value::new(rng.gen_range(0..3))),
                    },
                };
                let v = Operand::Imm(Value::new(unique_value));
                unique_value += 1;
                instrs.push(Instr::Rmw {
                    dst,
                    addr,
                    op,
                    src: v,
                });
                slots += 1;
                continue;
            }
            if rng.gen_bool(config.store_prob) {
                let val = if !loaded_regs.is_empty() && rng.gen_bool(config.data_dep_prob) {
                    Operand::Reg(*loaded_regs.choose(rng).expect("non-empty"))
                } else {
                    let v = Operand::Imm(Value::new(unique_value));
                    unique_value += 1;
                    v
                };
                instrs.push(Instr::Store { addr, val });
            } else {
                let dst = Reg::new(next_reg);
                next_reg += 1;
                loaded_regs.push(dst);
                instrs.push(Instr::Load { dst, addr });
            }
            slots += 1;
        }
        // Branch targets may point one past the end; ThreadProgram allows
        // that, but a branch emitted at the very last slot could target
        // len+1. Clamp.
        let len = instrs.len();
        for instr in &mut instrs {
            if let Instr::BranchNz { target, .. } = instr {
                *target = (*target).min(len);
            }
        }
        threads.push(ThreadProgram::new(instrs));
    }
    Program::new(threads)
}

/// A fixed corpus of interesting shapes for deterministic sweeps: `count`
/// programs derived from `seed`.
pub fn corpus(seed: u64, count: usize, config: &RandConfig) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_program(&mut rng, config))
        .collect()
}

/// An N-thread store-buffering chain used by the scaling benchmarks:
/// thread `i` stores to location `i` then loads location `(i+1) % n`.
pub fn sb_chain(n: usize) -> Program {
    let threads = (0..n)
        .map(|i| {
            ThreadProgram::new(vec![
                Instr::Store {
                    addr: Operand::Imm(Value::new(i as u64)),
                    val: Operand::Imm(Value::new(1)),
                },
                Instr::Load {
                    dst: Reg::new(0),
                    addr: Operand::Imm(Value::new(((i + 1) % n) as u64)),
                },
            ])
        })
        .collect();
    Program::new(threads)
}

/// A single thread issuing `n` alternating stores/loads over `locations`
/// addresses — used by closure/graph micro-benchmarks.
pub fn straightline(n: usize, locations: u64) -> Program {
    let mut instrs = Vec::with_capacity(n);
    let mut reg = 0usize;
    for i in 0..n {
        let addr = Operand::Imm(Value::new(i as u64 % locations));
        if i % 2 == 0 {
            instrs.push(Instr::Store {
                addr,
                val: Operand::Imm(Value::new(i as u64 + 1)),
            });
        } else {
            instrs.push(Instr::Load {
                dst: Reg::new(reg),
                addr,
            });
            reg += 1;
        }
    }
    Program::new(vec![ThreadProgram::new(instrs)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::enumerate::{enumerate, EnumConfig};
    use samm_core::policy::Policy;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let cfg = RandConfig::default();
        assert_eq!(random_program(&mut a, &cfg), random_program(&mut b, &cfg));
    }

    #[test]
    fn generated_programs_enumerate_under_all_models() {
        let cfg = RandConfig {
            branch_prob: 0.2,
            ..RandConfig::default()
        };
        for (i, prog) in corpus(7, 10, &cfg).iter().enumerate() {
            for policy in [
                Policy::sequential_consistency(),
                Policy::tso(),
                Policy::weak(),
            ] {
                let r = enumerate(prog, &policy, &EnumConfig::default());
                assert!(
                    r.is_ok(),
                    "program {i} under {} failed: {r:?}",
                    policy.name()
                );
                assert!(!r.unwrap().outcomes.is_empty());
            }
        }
    }

    #[test]
    fn store_values_are_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let prog = random_program(
            &mut rng,
            &RandConfig {
                threads: 3,
                ops_per_thread: 5,
                store_prob: 1.0,
                fence_prob: 0.0,
                data_dep_prob: 0.0,
                ..RandConfig::default()
            },
        );
        let mut values = Vec::new();
        for t in prog.threads() {
            for i in t.instrs() {
                if let Instr::Store {
                    val: Operand::Imm(v),
                    ..
                } = i
                {
                    values.push(v.raw());
                }
            }
        }
        let before = values.len();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), before);
    }

    #[test]
    fn sb_chain_shape() {
        let p = sb_chain(4);
        assert_eq!(p.threads().len(), 4);
        for t in p.threads() {
            assert_eq!(t.instrs().len(), 2);
        }
    }

    #[test]
    fn straightline_shape() {
        let p = straightline(9, 3);
        assert_eq!(p.threads().len(), 1);
        assert_eq!(p.threads()[0].instrs().len(), 9);
        let r = enumerate(&p, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 1, "single thread is deterministic");
    }
}
