//! Symbolic litmus-test representation and compilation.
//!
//! Litmus tests are written against *named* memory locations (`x`, `y`),
//! named registers (`r0`, `flag`), and labels — the shapes the paper's
//! figures use. [`LitmusTest::compile`] lowers a test onto the core
//! instruction set, assigning dense addresses and register indices, and
//! produces [`CompiledLitmus`] with enough metadata to evaluate outcome
//! conditions.

use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;

use samm_core::ids::{Addr, Reg, Value};
use samm_core::instr::{BinOp, Instr, Operand, Program, ThreadProgram};
use samm_core::outcome::{Outcome, OutcomeSet};

/// A symbolic operand: a named register, a literal, or the address of a
/// named location (for pointer tests such as the paper's Figure 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymOperand {
    /// A named, thread-local register.
    Reg(String),
    /// A literal value.
    Imm(u64),
    /// The address assigned to a named location.
    AddrOf(String),
}

impl SymOperand {
    /// Shorthand for a register operand.
    pub fn reg(name: impl Into<String>) -> Self {
        SymOperand::Reg(name.into())
    }

    /// Shorthand for an address-of operand.
    pub fn addr_of(name: impl Into<String>) -> Self {
        SymOperand::AddrOf(name.into())
    }
}

impl From<u64> for SymOperand {
    fn from(v: u64) -> Self {
        SymOperand::Imm(v)
    }
}

/// A symbolic instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SymInstr {
    /// `dst := src` (register renaming).
    Mov {
        /// Destination register name.
        dst: String,
        /// Source operand.
        src: SymOperand,
    },
    /// `dst := op(lhs, rhs)`.
    Binop {
        /// Destination register name.
        dst: String,
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: SymOperand,
        /// Right operand.
        rhs: SymOperand,
    },
    /// `dst := Mem[addr]`.
    Load {
        /// Destination register name.
        dst: String,
        /// Address operand (a location name via [`SymOperand::AddrOf`] or a
        /// register holding a pointer).
        addr: SymOperand,
    },
    /// `Mem[addr] := val`.
    Store {
        /// Address operand.
        addr: SymOperand,
        /// Value operand.
        val: SymOperand,
    },
    /// Atomic read-modify-write: `dst := old; Mem[addr] := f(old, src)`.
    Rmw {
        /// Destination register name (receives the old value).
        dst: String,
        /// Address operand.
        addr: SymOperand,
        /// The flavour, with CAS carrying its comparison operand.
        op: SymRmwOp,
        /// The combined/replacing operand.
        src: SymOperand,
    },
    /// Memory fence.
    Fence,
    /// Branch to `label` when `cond` is non-zero.
    Branch {
        /// Condition operand.
        cond: SymOperand,
        /// Target label.
        label: String,
    },
    /// Unconditional jump to `label`.
    Goto {
        /// Target label.
        label: String,
    },
    /// A label definition (binds to the next real instruction).
    Label(String),
    /// Stop the thread.
    Halt,
}

/// Symbolic read-modify-write flavour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymRmwOp {
    /// Unconditional exchange.
    Swap,
    /// Atomic fetch-and-add.
    FetchAdd,
    /// Compare-and-swap with the given expected value.
    Cas(SymOperand),
}

/// One thread of a litmus test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymThread {
    /// Display name (`P0`, `A`, ...).
    pub name: String,
    /// The symbolic instruction sequence.
    pub instrs: Vec<SymInstr>,
}

/// Whether a condition describes an allowed or a forbidden outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// The outcome is expected to be observable.
    Allowed,
    /// The outcome must never be observable.
    Forbidden,
}

impl fmt::Display for CondKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondKind::Allowed => write!(f, "allow"),
            CondKind::Forbidden => write!(f, "forbid"),
        }
    }
}

/// A conjunction of register-value clauses over the final state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Baseline classification (used by parsers; catalog entries attach
    /// per-model verdicts separately).
    pub kind: CondKind,
    /// `(thread index, register name, expected value)` clauses.
    pub clauses: Vec<(usize, String, SymOperand)>,
}

/// A complete symbolic litmus test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LitmusTest {
    /// Test name (`SB`, `fig3`, ...).
    pub name: String,
    /// The threads.
    pub threads: Vec<SymThread>,
    /// Non-zero initial values: `(location, value)`; the value may be the
    /// address of another location (pointer initialization).
    pub init: Vec<(String, SymOperand)>,
    /// Outcome conditions.
    pub conditions: Vec<Condition>,
}

/// Errors raised while compiling a symbolic test.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LitmusError {
    /// A branch or goto names an unknown label.
    UnknownLabel {
        /// Thread index.
        thread: usize,
        /// The missing label.
        label: String,
    },
    /// The same label is defined twice in one thread.
    DuplicateLabel {
        /// Thread index.
        thread: usize,
        /// The duplicated label.
        label: String,
    },
    /// A condition references a thread index that does not exist.
    BadThread {
        /// The out-of-range index.
        thread: usize,
    },
    /// A condition references a register never used by the thread.
    UnknownRegister {
        /// Thread index.
        thread: usize,
        /// The unknown register name.
        register: String,
    },
    /// A register operand is used in a context that requires a value but
    /// the register was never defined — reads as zero, so this is only a
    /// warning-level condition, kept as an error variant for strict mode.
    InitNotLiteral {
        /// The offending location name.
        location: String,
    },
}

impl fmt::Display for LitmusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitmusError::UnknownLabel { thread, label } => {
                write!(f, "thread {thread}: unknown label `{label}`")
            }
            LitmusError::DuplicateLabel { thread, label } => {
                write!(f, "thread {thread}: duplicate label `{label}`")
            }
            LitmusError::BadThread { thread } => {
                write!(f, "condition references missing thread {thread}")
            }
            LitmusError::UnknownRegister { thread, register } => {
                write!(
                    f,
                    "condition references unknown register {register} of thread {thread}"
                )
            }
            LitmusError::InitNotLiteral { location } => {
                write!(
                    f,
                    "initial value of `{location}` must be a literal or address"
                )
            }
        }
    }
}

impl StdError for LitmusError {}

/// A compiled condition with resolved registers and values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCondition {
    /// Baseline classification.
    pub kind: CondKind,
    /// `(thread, register, value)` clauses.
    pub clauses: Vec<(usize, Reg, Value)>,
    /// Human-readable rendering (`P0:r0=1 & P1:r0=0`).
    pub text: String,
}

impl CompiledCondition {
    /// Whether a single outcome satisfies every clause.
    pub fn matches(&self, outcome: &Outcome) -> bool {
        self.clauses.iter().all(|&(t, r, v)| outcome.reg(t, r) == v)
    }

    /// Whether any outcome in the set satisfies the condition.
    pub fn observable_in(&self, outcomes: &OutcomeSet) -> bool {
        outcomes.any(|o| self.matches(o))
    }
}

impl fmt::Display for CompiledCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.text)
    }
}

/// A litmus test lowered onto the core instruction set.
#[derive(Debug, Clone)]
pub struct CompiledLitmus {
    /// Test name.
    pub name: String,
    /// The executable program.
    pub program: Program,
    /// Location-name → address mapping.
    pub addr_of: BTreeMap<String, Addr>,
    /// Per-thread register-name → register mapping.
    pub regs: Vec<BTreeMap<String, Reg>>,
    /// Compiled conditions, in declaration order.
    pub conditions: Vec<CompiledCondition>,
}

impl CompiledLitmus {
    /// The address assigned to a location name.
    ///
    /// # Panics
    ///
    /// Panics when the location does not appear in the test.
    pub fn addr(&self, location: &str) -> Addr {
        self.addr_of[location]
    }

    /// The register assigned to `name` in `thread`.
    ///
    /// # Panics
    ///
    /// Panics when the register does not appear in the thread.
    pub fn reg(&self, thread: usize, name: &str) -> Reg {
        self.regs[thread][name]
    }
}

/// Name-resolution state shared by the compilation passes.
struct Resolver {
    addrs: BTreeMap<String, Addr>,
    next_addr: u64,
}

impl Resolver {
    fn addr(&mut self, name: &str) -> Addr {
        if let Some(&a) = self.addrs.get(name) {
            return a;
        }
        let a = Addr::new(self.next_addr);
        self.next_addr += 1;
        self.addrs.insert(name.to_owned(), a);
        a
    }
}

struct ThreadCompiler {
    regs: BTreeMap<String, Reg>,
    next_reg: usize,
}

impl ThreadCompiler {
    fn reg(&mut self, name: &str) -> Reg {
        if let Some(&r) = self.regs.get(name) {
            return r;
        }
        let r = Reg::new(self.next_reg);
        self.next_reg += 1;
        self.regs.insert(name.to_owned(), r);
        r
    }

    fn operand(&mut self, resolver: &mut Resolver, op: &SymOperand) -> Operand {
        match op {
            SymOperand::Reg(name) => Operand::Reg(self.reg(name)),
            SymOperand::Imm(v) => Operand::Imm(Value::new(*v)),
            SymOperand::AddrOf(name) => Operand::Imm(Value::from(resolver.addr(name))),
        }
    }
}

impl LitmusTest {
    /// Compiles the symbolic test down to a [`Program`] plus metadata.
    ///
    /// Locations are assigned dense addresses in order of first
    /// appearance; registers likewise per thread. Labels bind to the
    /// instruction that follows them (a trailing label means "halt").
    ///
    /// # Errors
    ///
    /// See [`LitmusError`].
    pub fn compile(&self) -> Result<CompiledLitmus, LitmusError> {
        let mut resolver = Resolver {
            addrs: BTreeMap::new(),
            next_addr: 0,
        };

        // Resolve init first so that explicitly initialized locations get
        // the lowest addresses (stable across edits to thread bodies).
        let mut init_pairs: Vec<(Addr, Value)> = Vec::new();
        for (location, value) in &self.init {
            let addr = resolver.addr(location);
            let value = match value {
                SymOperand::Imm(v) => Value::new(*v),
                SymOperand::AddrOf(name) => Value::from(resolver.addr(name)),
                SymOperand::Reg(_) => {
                    return Err(LitmusError::InitNotLiteral {
                        location: location.clone(),
                    })
                }
            };
            init_pairs.push((addr, value));
        }

        let mut threads = Vec::with_capacity(self.threads.len());
        let mut reg_maps = Vec::with_capacity(self.threads.len());
        for (t, thread) in self.threads.iter().enumerate() {
            let mut tc = ThreadCompiler {
                regs: BTreeMap::new(),
                next_reg: 0,
            };
            // Pass 1: label → instruction index (labels occupy no slot).
            let mut labels: BTreeMap<&str, usize> = BTreeMap::new();
            let mut index = 0usize;
            for instr in &thread.instrs {
                if let SymInstr::Label(name) = instr {
                    if labels.insert(name, index).is_some() {
                        return Err(LitmusError::DuplicateLabel {
                            thread: t,
                            label: name.clone(),
                        });
                    }
                } else {
                    index += 1;
                }
            }
            let lookup = |label: &String| -> Result<usize, LitmusError> {
                labels
                    .get(label.as_str())
                    .copied()
                    .ok_or_else(|| LitmusError::UnknownLabel {
                        thread: t,
                        label: label.clone(),
                    })
            };

            // Pass 2: emit.
            let mut instrs = Vec::with_capacity(index);
            for instr in &thread.instrs {
                match instr {
                    SymInstr::Label(_) => {}
                    SymInstr::Mov { dst, src } => {
                        let src = tc.operand(&mut resolver, src);
                        let dst = tc.reg(dst);
                        instrs.push(Instr::Mov { dst, src });
                    }
                    SymInstr::Binop { dst, op, lhs, rhs } => {
                        let lhs = tc.operand(&mut resolver, lhs);
                        let rhs = tc.operand(&mut resolver, rhs);
                        let dst = tc.reg(dst);
                        instrs.push(Instr::Binop {
                            dst,
                            op: *op,
                            lhs,
                            rhs,
                        });
                    }
                    SymInstr::Load { dst, addr } => {
                        let addr = tc.operand(&mut resolver, addr);
                        let dst = tc.reg(dst);
                        instrs.push(Instr::Load { dst, addr });
                    }
                    SymInstr::Store { addr, val } => {
                        let addr = tc.operand(&mut resolver, addr);
                        let val = tc.operand(&mut resolver, val);
                        instrs.push(Instr::Store { addr, val });
                    }
                    SymInstr::Rmw { dst, addr, op, src } => {
                        let addr = tc.operand(&mut resolver, addr);
                        let src = tc.operand(&mut resolver, src);
                        let op = match op {
                            SymRmwOp::Swap => samm_core::instr::RmwOp::Swap,
                            SymRmwOp::FetchAdd => samm_core::instr::RmwOp::FetchAdd,
                            SymRmwOp::Cas(expect) => samm_core::instr::RmwOp::Cas {
                                expect: tc.operand(&mut resolver, expect),
                            },
                        };
                        let dst = tc.reg(dst);
                        instrs.push(Instr::Rmw { dst, addr, op, src });
                    }
                    SymInstr::Fence => instrs.push(Instr::Fence),
                    SymInstr::Branch { cond, label } => {
                        let cond = tc.operand(&mut resolver, cond);
                        let target = lookup(label)?;
                        instrs.push(Instr::BranchNz { cond, target });
                    }
                    SymInstr::Goto { label } => {
                        let target = lookup(label)?;
                        instrs.push(Instr::Jump { target });
                    }
                    SymInstr::Halt => instrs.push(Instr::Halt),
                }
            }
            threads.push(ThreadProgram::new(instrs));
            reg_maps.push(tc.regs);
        }

        // Conditions.
        let mut conditions = Vec::with_capacity(self.conditions.len());
        for cond in &self.conditions {
            let mut clauses = Vec::with_capacity(cond.clauses.len());
            let mut text = String::new();
            for (i, (thread, reg_name, value)) in cond.clauses.iter().enumerate() {
                let reg_map = reg_maps
                    .get(*thread)
                    .ok_or(LitmusError::BadThread { thread: *thread })?;
                let reg =
                    reg_map
                        .get(reg_name)
                        .copied()
                        .ok_or_else(|| LitmusError::UnknownRegister {
                            thread: *thread,
                            register: reg_name.clone(),
                        })?;
                let value = match value {
                    SymOperand::Imm(v) => Value::new(*v),
                    SymOperand::AddrOf(name) => Value::from(resolver.addr(name)),
                    SymOperand::Reg(r) => {
                        return Err(LitmusError::UnknownRegister {
                            thread: *thread,
                            register: r.clone(),
                        })
                    }
                };
                if i > 0 {
                    text.push_str(" & ");
                }
                let _ = fmt::Write::write_fmt(
                    &mut text,
                    format_args!("P{thread}:{reg_name}={}", value),
                );
                clauses.push((*thread, reg, value));
            }
            conditions.push(CompiledCondition {
                kind: cond.kind,
                clauses,
                text,
            });
        }

        let mut init_map = BTreeMap::new();
        for (addr, value) in init_pairs {
            init_map.insert(addr, value);
        }
        Ok(CompiledLitmus {
            name: self.name.clone(),
            program: Program::with_init(threads, init_map),
            addr_of: resolver.addrs,
            regs: reg_maps,
            conditions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_test() -> LitmusTest {
        LitmusTest {
            name: "demo".into(),
            threads: vec![
                SymThread {
                    name: "P0".into(),
                    instrs: vec![
                        SymInstr::Store {
                            addr: SymOperand::addr_of("x"),
                            val: 1.into(),
                        },
                        SymInstr::Load {
                            dst: "r0".into(),
                            addr: SymOperand::addr_of("y"),
                        },
                    ],
                },
                SymThread {
                    name: "P1".into(),
                    instrs: vec![
                        SymInstr::Store {
                            addr: SymOperand::addr_of("y"),
                            val: 1.into(),
                        },
                        SymInstr::Load {
                            dst: "r0".into(),
                            addr: SymOperand::addr_of("x"),
                        },
                    ],
                },
            ],
            init: vec![],
            conditions: vec![Condition {
                kind: CondKind::Forbidden,
                clauses: vec![(0, "r0".into(), 0.into()), (1, "r0".into(), 0.into())],
            }],
        }
    }

    #[test]
    fn compiles_addresses_in_first_appearance_order() {
        let c = simple_test().compile().unwrap();
        assert_eq!(c.addr("x"), Addr::new(0));
        assert_eq!(c.addr("y"), Addr::new(1));
        assert_eq!(c.program.threads().len(), 2);
        assert_eq!(c.reg(0, "r0"), Reg::new(0));
    }

    #[test]
    fn condition_text_and_matching() {
        let c = simple_test().compile().unwrap();
        let cond = &c.conditions[0];
        assert_eq!(cond.text, "P0:r0=0 & P1:r0=0");
        let hit = Outcome::new(vec![vec![Value::ZERO], vec![Value::ZERO]]);
        let miss = Outcome::new(vec![vec![Value::new(1)], vec![Value::ZERO]]);
        assert!(cond.matches(&hit));
        assert!(!cond.matches(&miss));
    }

    #[test]
    fn labels_resolve_and_skip_slots() {
        let t = LitmusTest {
            name: "loop".into(),
            threads: vec![SymThread {
                name: "P0".into(),
                instrs: vec![
                    SymInstr::Branch {
                        cond: 1.into(),
                        label: "end".into(),
                    },
                    SymInstr::Store {
                        addr: SymOperand::addr_of("x"),
                        val: 1.into(),
                    },
                    SymInstr::Label("end".into()),
                    SymInstr::Fence,
                ],
            }],
            init: vec![],
            conditions: vec![],
        };
        let c = t.compile().unwrap();
        let instrs = c.program.threads()[0].instrs();
        assert_eq!(instrs.len(), 3, "the label takes no slot");
        assert!(matches!(instrs[0], Instr::BranchNz { target: 2, .. }));
    }

    #[test]
    fn trailing_label_means_halt() {
        let t = LitmusTest {
            name: "t".into(),
            threads: vec![SymThread {
                name: "P0".into(),
                instrs: vec![
                    SymInstr::Goto {
                        label: "end".into(),
                    },
                    SymInstr::Label("end".into()),
                ],
            }],
            init: vec![],
            conditions: vec![],
        };
        let c = t.compile().unwrap();
        assert!(matches!(
            c.program.threads()[0].instrs()[0],
            Instr::Jump { target: 1 }
        ));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let t = LitmusTest {
            name: "t".into(),
            threads: vec![SymThread {
                name: "P0".into(),
                instrs: vec![SymInstr::Goto {
                    label: "nowhere".into(),
                }],
            }],
            init: vec![],
            conditions: vec![],
        };
        assert!(matches!(
            t.compile(),
            Err(LitmusError::UnknownLabel { thread: 0, .. })
        ));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let t = LitmusTest {
            name: "t".into(),
            threads: vec![SymThread {
                name: "P0".into(),
                instrs: vec![
                    SymInstr::Label("a".into()),
                    SymInstr::Fence,
                    SymInstr::Label("a".into()),
                ],
            }],
            init: vec![],
            conditions: vec![],
        };
        assert!(matches!(
            t.compile(),
            Err(LitmusError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn condition_errors() {
        let mut t = simple_test();
        t.conditions = vec![Condition {
            kind: CondKind::Allowed,
            clauses: vec![(7, "r0".into(), 0.into())],
        }];
        assert!(matches!(
            t.compile(),
            Err(LitmusError::BadThread { thread: 7 })
        ));
        t.conditions = vec![Condition {
            kind: CondKind::Allowed,
            clauses: vec![(0, "zz".into(), 0.into())],
        }];
        assert!(matches!(
            t.compile(),
            Err(LitmusError::UnknownRegister { .. })
        ));
    }

    #[test]
    fn pointer_init_resolves_addresses() {
        let t = LitmusTest {
            name: "ptr".into(),
            threads: vec![SymThread {
                name: "P0".into(),
                instrs: vec![SymInstr::Load {
                    dst: "r0".into(),
                    addr: SymOperand::addr_of("p"),
                }],
            }],
            init: vec![("p".into(), SymOperand::addr_of("y"))],
            conditions: vec![],
        };
        let c = t.compile().unwrap();
        let p = c.addr("p");
        let y = c.addr("y");
        assert_eq!(c.program.initial_value(p), Value::from(y));
    }

    #[test]
    fn init_rejects_register_values() {
        let t = LitmusTest {
            name: "bad".into(),
            threads: vec![],
            init: vec![("x".into(), SymOperand::reg("r0"))],
            conditions: vec![],
        };
        assert!(matches!(
            t.compile(),
            Err(LitmusError::InitNotLiteral { .. })
        ));
    }
}
