//! Serializes a symbolic litmus test back to the text format of
//! [`crate::parser`], such that `parse(print(t))` reproduces `t`.
//!
//! Useful for saving generated or programmatically built tests to
//! `.litmus` files and for property-testing the parser itself.

use std::error::Error as StdError;
use std::fmt;
use std::fmt::Write as _;

use samm_core::instr::BinOp;

use crate::ast::{CondKind, LitmusTest, SymInstr, SymOperand, SymRmwOp};

/// A test shape the text format cannot express.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrintError {
    /// A memory address given as a raw literal (the grammar only knows
    /// named locations and pointer registers).
    LiteralAddress,
    /// A condition references a thread index with no corresponding thread.
    DanglingThread {
        /// The out-of-range index.
        index: usize,
    },
}

impl fmt::Display for PrintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrintError::LiteralAddress => {
                write!(f, "the text format cannot express literal addresses")
            }
            PrintError::DanglingThread { index } => {
                write!(f, "condition references missing thread {index}")
            }
        }
    }
}

impl StdError for PrintError {}

fn operand(op: &SymOperand) -> String {
    match op {
        SymOperand::Reg(r) => r.clone(),
        SymOperand::Imm(v) => v.to_string(),
        SymOperand::AddrOf(loc) => format!("&{loc}"),
    }
}

fn address(op: &SymOperand) -> Result<String, PrintError> {
    match op {
        SymOperand::AddrOf(loc) => Ok(loc.clone()),
        SymOperand::Reg(r) => Ok(format!("*{r}")),
        SymOperand::Imm(_) => Err(PrintError::LiteralAddress),
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
    }
}

/// Renders a symbolic test in the text format.
///
/// # Errors
///
/// Returns [`PrintError`] for shapes the grammar cannot express (literal
/// addresses, dangling condition threads).
///
/// # Examples
///
/// ```
/// use samm_litmus::{parser, printer};
///
/// let src = "test: t\nthread P0:\n  store x, 1\n  r0 = load x\n";
/// let test = parser::parse(src).unwrap();
/// let printed = printer::print(&test).unwrap();
/// let reparsed = parser::parse(&printed).unwrap();
/// assert_eq!(test.threads, reparsed.threads);
/// ```
pub fn print(test: &LitmusTest) -> Result<String, PrintError> {
    let mut out = String::new();
    let _ = writeln!(out, "test: {}", test.name);
    if !test.init.is_empty() {
        let entries: Vec<String> = test
            .init
            .iter()
            .map(|(loc, value)| format!("{loc} = {}", operand(value)))
            .collect();
        let _ = writeln!(out, "init: {}", entries.join(", "));
    }
    for thread in &test.threads {
        let _ = writeln!(out);
        let _ = writeln!(out, "thread {}:", thread.name);
        for instr in &thread.instrs {
            let line = match instr {
                SymInstr::Mov { dst, src } => format!("  {dst} = {}", operand(src)),
                SymInstr::Binop { dst, op, lhs, rhs } => format!(
                    "  {dst} = {} {}, {}",
                    binop_name(*op),
                    operand(lhs),
                    operand(rhs)
                ),
                SymInstr::Load { dst, addr } => {
                    format!("  {dst} = load {}", address(addr)?)
                }
                SymInstr::Store { addr, val } => {
                    format!("  store {}, {}", address(addr)?, operand(val))
                }
                SymInstr::Rmw { dst, addr, op, src } => match op {
                    SymRmwOp::Swap => {
                        format!("  {dst} = swap {}, {}", address(addr)?, operand(src))
                    }
                    SymRmwOp::FetchAdd => {
                        format!("  {dst} = faa {}, {}", address(addr)?, operand(src))
                    }
                    SymRmwOp::Cas(expect) => format!(
                        "  {dst} = cas {}, {}, {}",
                        address(addr)?,
                        operand(expect),
                        operand(src)
                    ),
                },
                SymInstr::Fence => "  fence".to_owned(),
                SymInstr::Branch { cond, label } => {
                    format!("  if {} goto {label}", operand(cond))
                }
                SymInstr::Goto { label } => format!("  goto {label}"),
                SymInstr::Label(label) => format!("{label}:"),
                SymInstr::Halt => "  halt".to_owned(),
            };
            let _ = writeln!(out, "{line}");
        }
    }
    if !test.conditions.is_empty() {
        let _ = writeln!(out);
    }
    for cond in &test.conditions {
        let keyword = match cond.kind {
            CondKind::Allowed => "allow",
            CondKind::Forbidden => "forbid",
        };
        let clauses: Result<Vec<String>, PrintError> = cond
            .clauses
            .iter()
            .map(|(thread, reg, value)| {
                let name = test
                    .threads
                    .get(*thread)
                    .map(|t| t.name.clone())
                    .ok_or(PrintError::DanglingThread { index: *thread })?;
                Ok(format!("{name}:{reg} = {}", operand(value)))
            })
            .collect();
        let _ = writeln!(out, "{keyword}: {}", clauses?.join(" & "));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SAMPLE: &str = "\
test: MP
init: data = 0, p = &data

thread P0:
  store data, 42
  fence
  store flag, 1

thread P1:
  r0 = load flag
  if r0 goto go
  goto end
go:
  fence
  r1 = load data
  r2 = cas lock, 0, 1
  r3 = faa c, 1
  r4 = swap s, 9
  r5 = add r1, 2
end:
  halt

forbid: P1:r0 = 1 & P1:r1 = 0
allow: P1:r0 = 0
";

    #[test]
    fn round_trips_every_construct() {
        let test = parse(SAMPLE).unwrap();
        let printed = print(&test).unwrap();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(test.name, reparsed.name);
        assert_eq!(test.init, reparsed.init);
        assert_eq!(test.threads, reparsed.threads);
        assert_eq!(test.conditions.len(), reparsed.conditions.len());
        for (a, b) in test.conditions.iter().zip(&reparsed.conditions) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.clauses, b.clauses);
        }
    }

    #[test]
    fn round_trip_compiles_identically() {
        let test = parse(SAMPLE).unwrap();
        let printed = print(&test).unwrap();
        let reparsed = parse(&printed).unwrap();
        let a = test.compile().unwrap();
        let b = reparsed.compile().unwrap();
        assert_eq!(a.program, b.program);
        assert_eq!(a.addr_of, b.addr_of);
    }

    #[test]
    fn literal_addresses_are_rejected() {
        use crate::ast::{SymOperand, SymThread};
        let test = LitmusTest {
            name: "bad".into(),
            threads: vec![SymThread {
                name: "P0".into(),
                instrs: vec![SymInstr::Store {
                    addr: SymOperand::Imm(3),
                    val: SymOperand::Imm(1),
                }],
            }],
            init: vec![],
            conditions: vec![],
        };
        assert_eq!(print(&test), Err(PrintError::LiteralAddress));
    }

    #[test]
    fn dangling_condition_thread_is_rejected() {
        use crate::ast::{CondKind, Condition};
        let test = LitmusTest {
            name: "bad".into(),
            threads: vec![],
            init: vec![],
            conditions: vec![Condition {
                kind: CondKind::Allowed,
                clauses: vec![(4, "r0".into(), SymOperand::Imm(1))],
            }],
        };
        assert_eq!(print(&test), Err(PrintError::DanglingThread { index: 4 }));
    }

    #[test]
    fn pointer_operations_round_trip() {
        let src = "\
test: ptr
init: p = &y
thread P0:
  r0 = load p
  store *r0, 7
  r1 = load *r0
";
        let test = parse(src).unwrap();
        let printed = print(&test).unwrap();
        assert_eq!(parse(&printed).unwrap().threads, test.threads);
        assert!(printed.contains("store *r0, 7"));
        assert!(printed.contains("init: p = &y"));
    }
}
