//! A small text format for litmus tests.
//!
//! The format mirrors how the paper prints its figures. Example:
//!
//! ```text
//! test: MP
//! init: x = 0, flag = 0
//!
//! thread P0:
//!   store x, 42
//!   fence
//!   store flag, 1
//!
//! thread P1:
//!   r0 = load flag
//!   fence
//!   r1 = load x
//!
//! forbid: P1:r0 = 1 & P1:r1 = 0
//! ```
//!
//! Grammar notes:
//!
//! * `store LOC, VAL` / `REG = load LOC` use location names directly;
//!   `store *REG, VAL` and `REG = load *REG` go through a pointer register;
//! * values are integers, registers, or `&LOC` (the address of a location);
//! * compute instructions: `REG = add A, B` (also `sub mul and or xor eq ne
//!   lt`), plain `REG = VAL` is a move;
//! * control flow: `if REG goto LABEL`, `goto LABEL`, `halt`, and `LABEL:`
//!   lines;
//! * `allow:` / `forbid:` lines take `P:reg = value` clauses joined by `&`;
//! * `#` and `//` start comments.

use std::error::Error as StdError;
use std::fmt;

use samm_core::instr::BinOp;

use crate::ast::{CondKind, Condition, LitmusTest, SymInstr, SymOperand, SymThread};

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl StdError for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses a value operand: integer, `&loc`, or register name.
fn parse_operand(line: usize, s: &str) -> Result<SymOperand, ParseError> {
    let s = s.trim();
    if let Some(loc) = s.strip_prefix('&') {
        if !is_ident(loc) {
            return Err(err(line, format!("bad location name `{loc}`")));
        }
        return Ok(SymOperand::addr_of(loc));
    }
    if let Ok(v) = s.parse::<u64>() {
        return Ok(SymOperand::Imm(v));
    }
    if is_ident(s) {
        return Ok(SymOperand::reg(s));
    }
    Err(err(
        line,
        format!("expected a value, register or &location, got `{s}`"),
    ))
}

/// Parses an address operand: a location name or `*reg`.
fn parse_addr(line: usize, s: &str) -> Result<SymOperand, ParseError> {
    let s = s.trim();
    if let Some(reg) = s.strip_prefix('*') {
        if !is_ident(reg) {
            return Err(err(line, format!("bad pointer register `{reg}`")));
        }
        return Ok(SymOperand::reg(reg));
    }
    if is_ident(s) {
        return Ok(SymOperand::addr_of(s));
    }
    Err(err(
        line,
        format!("expected a location or *register, got `{s}`"),
    ))
}

fn binop_by_name(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "lt" => BinOp::Lt,
        _ => return None,
    })
}

fn parse_instr(line: usize, text: &str) -> Result<SymInstr, ParseError> {
    // Label line: `name:` with nothing else.
    if let Some(label) = text.strip_suffix(':') {
        let label = label.trim();
        if is_ident(label) {
            return Ok(SymInstr::Label(label.to_owned()));
        }
    }
    if text == "fence" {
        return Ok(SymInstr::Fence);
    }
    if text == "halt" {
        return Ok(SymInstr::Halt);
    }
    if let Some(rest) = text.strip_prefix("goto ") {
        let label = rest.trim();
        if !is_ident(label) {
            return Err(err(line, format!("bad label `{label}`")));
        }
        return Ok(SymInstr::Goto {
            label: label.to_owned(),
        });
    }
    if let Some(rest) = text.strip_prefix("if ") {
        let (cond, label) = rest
            .split_once(" goto ")
            .ok_or_else(|| err(line, "expected `if REG goto LABEL`"))?;
        let cond = parse_operand(line, cond)?;
        let label = label.trim();
        if !is_ident(label) {
            return Err(err(line, format!("bad label `{label}`")));
        }
        return Ok(SymInstr::Branch {
            cond,
            label: label.to_owned(),
        });
    }
    if let Some(rest) = text.strip_prefix("store ") {
        let (addr, val) = rest
            .split_once(',')
            .ok_or_else(|| err(line, "expected `store LOC, VALUE`"))?;
        return Ok(SymInstr::Store {
            addr: parse_addr(line, addr)?,
            val: parse_operand(line, val)?,
        });
    }
    // Assignment forms: `REG = ...`.
    if let Some((dst, rhs)) = text.split_once('=') {
        let dst = dst.trim();
        if !is_ident(dst) {
            return Err(err(line, format!("bad register `{dst}`")));
        }
        let rhs = rhs.trim();
        if let Some(rest) = rhs.strip_prefix("load ") {
            return Ok(SymInstr::Load {
                dst: dst.to_owned(),
                addr: parse_addr(line, rest)?,
            });
        }
        if let Some(rest) = rhs.strip_prefix("cas ") {
            // REG = cas LOC, EXPECT, NEW
            let parts: Vec<&str> = rest.splitn(3, ',').collect();
            if parts.len() != 3 {
                return Err(err(line, "expected `cas LOC, EXPECT, NEW`"));
            }
            return Ok(SymInstr::Rmw {
                dst: dst.to_owned(),
                addr: parse_addr(line, parts[0])?,
                op: crate::ast::SymRmwOp::Cas(parse_operand(line, parts[1])?),
                src: parse_operand(line, parts[2])?,
            });
        }
        if let Some(rest) = rhs.strip_prefix("swap ") {
            let (loc, val) = rest
                .split_once(',')
                .ok_or_else(|| err(line, "expected `swap LOC, VALUE`"))?;
            return Ok(SymInstr::Rmw {
                dst: dst.to_owned(),
                addr: parse_addr(line, loc)?,
                op: crate::ast::SymRmwOp::Swap,
                src: parse_operand(line, val)?,
            });
        }
        if let Some(rest) = rhs.strip_prefix("faa ") {
            let (loc, delta) = rest
                .split_once(',')
                .ok_or_else(|| err(line, "expected `faa LOC, DELTA`"))?;
            return Ok(SymInstr::Rmw {
                dst: dst.to_owned(),
                addr: parse_addr(line, loc)?,
                op: crate::ast::SymRmwOp::FetchAdd,
                src: parse_operand(line, delta)?,
            });
        }
        if let Some((op_name, args)) = rhs.split_once(' ') {
            if let Some(op) = binop_by_name(op_name) {
                let (lhs, rhs2) = args
                    .split_once(',')
                    .ok_or_else(|| err(line, format!("expected `{op_name} A, B`")))?;
                return Ok(SymInstr::Binop {
                    dst: dst.to_owned(),
                    op,
                    lhs: parse_operand(line, lhs)?,
                    rhs: parse_operand(line, rhs2)?,
                });
            }
        }
        return Ok(SymInstr::Mov {
            dst: dst.to_owned(),
            src: parse_operand(line, rhs)?,
        });
    }
    Err(err(line, format!("unrecognized instruction `{text}`")))
}

fn parse_condition(
    line: usize,
    kind: CondKind,
    rest: &str,
    thread_names: &[String],
) -> Result<Condition, ParseError> {
    // Split clauses on `&`, but re-attach pieces that belong to an
    // address-of value: in `P0:r0 = &y & P0:r1 = 7` the first `&` is part
    // of `&y` (the preceding piece ends with `=`), the second separates
    // clauses.
    let mut clause_texts: Vec<String> = Vec::new();
    for piece in rest.split('&') {
        match clause_texts.last_mut() {
            Some(last) if last.trim_end().ends_with('=') => {
                last.push('&');
                last.push_str(piece);
            }
            _ => clause_texts.push(piece.to_owned()),
        }
    }
    let mut clauses = Vec::new();
    for clause in &clause_texts {
        let clause = clause.trim();
        let (lhs, value) = clause
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected `P:reg = value` in `{clause}`")))?;
        let (thread, reg) = lhs
            .trim()
            .split_once(':')
            .ok_or_else(|| err(line, format!("expected `P:reg` in `{lhs}`")))?;
        let thread = thread.trim();
        let idx = thread_names
            .iter()
            .position(|n| n == thread)
            .ok_or_else(|| err(line, format!("unknown thread `{thread}`")))?;
        let reg = reg.trim();
        if !is_ident(reg) {
            return Err(err(line, format!("bad register `{reg}`")));
        }
        clauses.push((idx, reg.to_owned(), parse_operand(line, value)?));
    }
    if clauses.is_empty() {
        return Err(err(line, "condition needs at least one clause"));
    }
    Ok(Condition { kind, clauses })
}

/// Parses the litmus text format into a symbolic test.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input.
///
/// # Examples
///
/// ```
/// let src = "\
/// test: SB
/// thread P0:
///   store x, 1
///   r0 = load y
/// thread P1:
///   store y, 1
///   r0 = load x
/// forbid: P0:r0 = 0 & P1:r0 = 0
/// ";
/// let test = samm_litmus::parser::parse(src).unwrap();
/// assert_eq!(test.threads.len(), 2);
/// let compiled = test.compile().unwrap();
/// assert_eq!(compiled.conditions.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<LitmusTest, ParseError> {
    let mut test = LitmusTest::default();
    let mut current_thread: Option<SymThread> = None;
    let mut thread_names: Vec<String> = Vec::new();
    let mut pending_conditions: Vec<(usize, CondKind, String)> = Vec::new();

    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let mut text = raw;
        if let Some((before, _)) = text.split_once('#') {
            text = before;
        }
        if let Some((before, _)) = text.split_once("//") {
            text = before;
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix("test:") {
            test.name = rest.trim().to_owned();
            continue;
        }
        if let Some(rest) = text.strip_prefix("init:") {
            for entry in rest.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                let (loc, value) = entry
                    .split_once('=')
                    .ok_or_else(|| err(line, format!("expected `loc = value` in `{entry}`")))?;
                let loc = loc.trim();
                if !is_ident(loc) {
                    return Err(err(line, format!("bad location `{loc}`")));
                }
                test.init
                    .push((loc.to_owned(), parse_operand(line, value)?));
            }
            continue;
        }
        if let Some(rest) = text.strip_prefix("thread ") {
            let name = rest
                .trim()
                .strip_suffix(':')
                .ok_or_else(|| err(line, "expected `thread NAME:`"))?
                .trim();
            if !is_ident(name) {
                return Err(err(line, format!("bad thread name `{name}`")));
            }
            if let Some(done) = current_thread.take() {
                test.threads.push(done);
            }
            thread_names.push(name.to_owned());
            current_thread = Some(SymThread {
                name: name.to_owned(),
                instrs: Vec::new(),
            });
            continue;
        }
        if let Some(rest) = text.strip_prefix("allow:") {
            pending_conditions.push((line, CondKind::Allowed, rest.to_owned()));
            continue;
        }
        if let Some(rest) = text.strip_prefix("forbid:") {
            pending_conditions.push((line, CondKind::Forbidden, rest.to_owned()));
            continue;
        }
        match current_thread.as_mut() {
            Some(thread) => thread.instrs.push(parse_instr(line, text)?),
            None => {
                return Err(err(
                    line,
                    format!("`{text}` appears outside any thread block"),
                ))
            }
        }
    }
    if let Some(done) = current_thread.take() {
        test.threads.push(done);
    }
    // Conditions may reference threads declared later, so resolve last.
    for (line, kind, rest) in pending_conditions {
        test.conditions
            .push(parse_condition(line, kind, &rest, &thread_names)?);
    }
    Ok(test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::enumerate::{enumerate, EnumConfig};
    use samm_core::policy::Policy;

    const MP: &str = "\
test: MP
init: x = 0, flag = 0

thread P0:
  store x, 42      # data
  fence
  store flag, 1    // publish

thread P1:
  r0 = load flag
  fence
  r1 = load x

forbid: P1:r0 = 1 & P1:r1 = 0
";

    #[test]
    fn parses_and_runs_mp() {
        let test = parse(MP).unwrap();
        assert_eq!(test.name, "MP");
        assert_eq!(test.threads.len(), 2);
        let compiled = test.compile().unwrap();
        let weak = enumerate(&compiled.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(
            !compiled.conditions[0].observable_in(&weak.outcomes),
            "fenced MP forbids stale data even under the weak model"
        );
    }

    #[test]
    fn parses_pointers_and_address_values() {
        let src = "\
test: ptr
init: p = &y
thread P0:
  r0 = load p
  store *r0, 7
  r1 = load y
allow: P0:r0 = &y & P0:r1 = 7
";
        let compiled = parse(src).unwrap().compile().unwrap();
        let r = enumerate(&compiled.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(compiled.conditions[0].observable_in(&r.outcomes));
    }

    #[test]
    fn parses_control_flow() {
        let src = "\
test: cf
thread P0:
  r0 = load flag
  if r0 goto yes
  r1 = 10
  goto end
yes:
  r1 = 20
end:
  halt
";
        let test = parse(src).unwrap();
        let compiled = test.compile().unwrap();
        assert_eq!(compiled.program.threads()[0].instrs().len(), 6);
    }

    #[test]
    fn parses_binops_and_moves() {
        let src = "\
test: alu
thread P0:
  r0 = 5
  r1 = add r0, 3
  r2 = eq r1, 8
  store x, r2
  r3 = load x
allow: P0:r3 = 1
";
        let compiled = parse(src).unwrap().compile().unwrap();
        let r = enumerate(&compiled.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(compiled.conditions[0].observable_in(&r.outcomes));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "test: t\nthread P0:\n  blorp qux\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn instruction_outside_thread_is_rejected() {
        let e = parse("store x, 1\n").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn condition_with_unknown_thread_is_rejected() {
        let src = "test: t\nthread P0:\n  store x, 1\nforbid: P9:r0 = 0\n";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("unknown thread"));
    }

    #[test]
    fn malformed_condition_clause_is_rejected() {
        let src = "test: t\nthread P0:\n  store x, 1\nforbid: P0r0\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let src = "# header\ntest: t\n\nthread P0:\n  # nothing\n  fence\n";
        let test = parse(src).unwrap();
        assert_eq!(test.threads[0].instrs.len(), 1);
    }

    #[test]
    fn parses_rmw_instructions() {
        let src = "\
test: atomics
thread P0:
  r0 = cas lock, 0, 1
  r1 = swap x, 5
  r2 = faa c, 2
";
        let test = parse(src).unwrap();
        use crate::ast::{SymInstr, SymRmwOp};
        assert!(matches!(
            &test.threads[0].instrs[0],
            SymInstr::Rmw {
                op: SymRmwOp::Cas(_),
                ..
            }
        ));
        assert!(matches!(
            &test.threads[0].instrs[1],
            SymInstr::Rmw {
                op: SymRmwOp::Swap,
                ..
            }
        ));
        assert!(matches!(
            &test.threads[0].instrs[2],
            SymInstr::Rmw {
                op: SymRmwOp::FetchAdd,
                ..
            }
        ));
        // And they compile and run deterministically single-threaded.
        let compiled = test.compile().unwrap();
        let r = samm_core::enumerate::enumerate(
            &compiled.program,
            &samm_core::policy::Policy::weak(),
            &samm_core::enumerate::EnumConfig::default(),
        )
        .unwrap();
        assert_eq!(r.outcomes.len(), 1);
    }

    mod fuzz {
        use super::super::parse;
        use proptest::prelude::*;

        proptest! {
            /// The parser never panics, whatever the input.
            #[test]
            fn parser_is_total(input in "\\PC{0,200}") {
                let _ = parse(&input);
            }

            /// Line-structured junk with plausible keywords never panics
            /// and errors carry a plausible line number.
            #[test]
            fn structured_junk_is_rejected_gracefully(
                lines in prop::collection::vec(
                    prop_oneof![
                        Just("thread P0:".to_owned()),
                        Just("  store x, 1".to_owned()),
                        Just("  r0 = load y".to_owned()),
                        Just("  fence".to_owned()),
                        "[a-z ]{0,12}",
                        "  [a-z=,&*]{0,12}",
                    ],
                    0..12
                )
            ) {
                let src = lines.join("\n");
                match parse(&src) {
                    Ok(test) => {
                        // Whatever parsed must also compile or fail
                        // gracefully.
                        let _ = test.compile();
                    }
                    Err(e) => prop_assert!(e.line <= lines.len() + 1),
                }
            }
        }
    }
}
