//! Fluent construction of litmus tests.
//!
//! The builder mirrors how the paper's figures are written: per-thread
//! instruction columns over named locations, with conditions on the final
//! register values.
//!
//! # Examples
//!
//! Store buffering in six lines:
//!
//! ```
//! use samm_litmus::builder::LitmusBuilder;
//!
//! let test = LitmusBuilder::new("SB")
//!     .thread("P0", |t| { t.store("x", 1).load("r0", "y"); })
//!     .thread("P1", |t| { t.store("y", 1).load("r0", "x"); })
//!     .forbid(&[("P0", "r0", 0), ("P1", "r0", 0)])
//!     .build()
//!     .unwrap();
//! assert_eq!(test.program.threads().len(), 2);
//! ```

use samm_core::instr::BinOp;

use crate::ast::{
    CompiledLitmus, CondKind, Condition, LitmusError, LitmusTest, SymInstr, SymOperand, SymRmwOp,
    SymThread,
};

/// Builder for one thread's instruction sequence.
///
/// All methods return `&mut Self` for chaining. Location arguments name
/// memory cells; register arguments name thread-local registers.
#[derive(Debug, Default)]
pub struct ThreadBuilder {
    name: String,
    instrs: Vec<SymInstr>,
}

impl ThreadBuilder {
    /// `Mem[location] := value`.
    pub fn store(&mut self, location: &str, value: u64) -> &mut Self {
        self.instrs.push(SymInstr::Store {
            addr: SymOperand::addr_of(location),
            val: value.into(),
        });
        self
    }

    /// `Mem[location] := &pointee` — store the *address* of another
    /// location (pointer publication).
    pub fn store_addr_of(&mut self, location: &str, pointee: &str) -> &mut Self {
        self.instrs.push(SymInstr::Store {
            addr: SymOperand::addr_of(location),
            val: SymOperand::addr_of(pointee),
        });
        self
    }

    /// `Mem[location] := reg`.
    pub fn store_reg(&mut self, location: &str, reg: &str) -> &mut Self {
        self.instrs.push(SymInstr::Store {
            addr: SymOperand::addr_of(location),
            val: SymOperand::reg(reg),
        });
        self
    }

    /// `Mem[*pointer_reg] := value` — store through a pointer held in a
    /// register (the paper's `S7 r6,7`).
    pub fn store_via(&mut self, pointer_reg: &str, value: u64) -> &mut Self {
        self.instrs.push(SymInstr::Store {
            addr: SymOperand::reg(pointer_reg),
            val: value.into(),
        });
        self
    }

    /// `reg := Mem[location]`.
    pub fn load(&mut self, reg: &str, location: &str) -> &mut Self {
        self.instrs.push(SymInstr::Load {
            dst: reg.into(),
            addr: SymOperand::addr_of(location),
        });
        self
    }

    /// `reg := Mem[*pointer_reg]` — load through a pointer register.
    pub fn load_via(&mut self, reg: &str, pointer_reg: &str) -> &mut Self {
        self.instrs.push(SymInstr::Load {
            dst: reg.into(),
            addr: SymOperand::reg(pointer_reg),
        });
        self
    }

    /// `dst := old; Mem[location] := new if old == expect` — atomic
    /// compare-and-swap. `dst` receives the *old* value; the store happens
    /// only on success.
    pub fn cas(&mut self, dst: &str, location: &str, expect: u64, new: u64) -> &mut Self {
        self.instrs.push(SymInstr::Rmw {
            dst: dst.into(),
            addr: SymOperand::addr_of(location),
            op: SymRmwOp::Cas(expect.into()),
            src: new.into(),
        });
        self
    }

    /// `dst := old; Mem[location] := value` — atomic exchange.
    pub fn swap(&mut self, dst: &str, location: &str, value: u64) -> &mut Self {
        self.instrs.push(SymInstr::Rmw {
            dst: dst.into(),
            addr: SymOperand::addr_of(location),
            op: SymRmwOp::Swap,
            src: value.into(),
        });
        self
    }

    /// `dst := old; Mem[location] := old + delta` — atomic fetch-and-add.
    pub fn fetch_add(&mut self, dst: &str, location: &str, delta: u64) -> &mut Self {
        self.instrs.push(SymInstr::Rmw {
            dst: dst.into(),
            addr: SymOperand::addr_of(location),
            op: SymRmwOp::FetchAdd,
            src: delta.into(),
        });
        self
    }

    /// A memory fence.
    pub fn fence(&mut self) -> &mut Self {
        self.instrs.push(SymInstr::Fence);
        self
    }

    /// `dst := value`.
    pub fn mov(&mut self, dst: &str, value: u64) -> &mut Self {
        self.instrs.push(SymInstr::Mov {
            dst: dst.into(),
            src: value.into(),
        });
        self
    }

    /// `dst := op(lhs, rhs)` over arbitrary symbolic operands.
    pub fn binop(&mut self, dst: &str, op: BinOp, lhs: SymOperand, rhs: SymOperand) -> &mut Self {
        self.instrs.push(SymInstr::Binop {
            dst: dst.into(),
            op,
            lhs,
            rhs,
        });
        self
    }

    /// Branch to `label` when `cond_reg` is non-zero.
    pub fn branch_nz(&mut self, cond_reg: &str, label: &str) -> &mut Self {
        self.instrs.push(SymInstr::Branch {
            cond: SymOperand::reg(cond_reg),
            label: label.into(),
        });
        self
    }

    /// Unconditional jump to `label`.
    pub fn goto(&mut self, label: &str) -> &mut Self {
        self.instrs.push(SymInstr::Goto {
            label: label.into(),
        });
        self
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: &str) -> &mut Self {
        self.instrs.push(SymInstr::Label(label.into()));
        self
    }

    /// Stops the thread early.
    pub fn halt(&mut self) -> &mut Self {
        self.instrs.push(SymInstr::Halt);
        self
    }

    /// Pushes a raw symbolic instruction.
    pub fn raw(&mut self, instr: SymInstr) -> &mut Self {
        self.instrs.push(instr);
        self
    }
}

/// Builder for a whole litmus test.
#[derive(Debug, Default)]
pub struct LitmusBuilder {
    test: LitmusTest,
    thread_names: Vec<String>,
}

impl LitmusBuilder {
    /// Starts a new test.
    pub fn new(name: impl Into<String>) -> Self {
        LitmusBuilder {
            test: LitmusTest {
                name: name.into(),
                ..LitmusTest::default()
            },
            thread_names: Vec::new(),
        }
    }

    /// Sets the initial value of a location (default is zero).
    #[must_use]
    pub fn init(mut self, location: &str, value: u64) -> Self {
        self.test.init.push((location.into(), value.into()));
        self
    }

    /// Initializes a location with the *address* of another location.
    #[must_use]
    pub fn init_addr_of(mut self, location: &str, pointee: &str) -> Self {
        self.test
            .init
            .push((location.into(), SymOperand::addr_of(pointee)));
        self
    }

    /// Adds a thread, built inside the closure.
    #[must_use]
    pub fn thread(mut self, name: &str, f: impl FnOnce(&mut ThreadBuilder)) -> Self {
        let mut tb = ThreadBuilder {
            name: name.into(),
            instrs: Vec::new(),
        };
        f(&mut tb);
        self.thread_names.push(tb.name.clone());
        self.test.threads.push(SymThread {
            name: tb.name,
            instrs: tb.instrs,
        });
        self
    }

    fn condition(mut self, kind: CondKind, clauses: &[(&str, &str, u64)]) -> Self {
        let resolved = clauses
            .iter()
            .map(|&(thread, reg, value)| {
                let idx = self
                    .thread_names
                    .iter()
                    .position(|n| n == thread)
                    .unwrap_or(usize::MAX);
                (idx, reg.to_owned(), SymOperand::Imm(value))
            })
            .collect();
        self.test.conditions.push(Condition {
            kind,
            clauses: resolved,
        });
        self
    }

    /// Adds a forbidden-outcome condition: `(thread name, register, value)`
    /// clauses, all of which must hold.
    #[must_use]
    pub fn forbid(self, clauses: &[(&str, &str, u64)]) -> Self {
        self.condition(CondKind::Forbidden, clauses)
    }

    /// Adds an allowed-outcome condition.
    #[must_use]
    pub fn allow(self, clauses: &[(&str, &str, u64)]) -> Self {
        self.condition(CondKind::Allowed, clauses)
    }

    /// Adds a condition whose expected value is the *address* of a
    /// location (pointer-valued registers, Figure 8's `r6 = z`).
    #[must_use]
    pub fn allow_with_addr(
        mut self,
        clauses: &[(&str, &str, u64)],
        addr_clause: (&str, &str, &str),
    ) -> Self {
        let mut resolved: Vec<(usize, String, SymOperand)> = clauses
            .iter()
            .map(|&(thread, reg, value)| {
                let idx = self
                    .thread_names
                    .iter()
                    .position(|n| n == thread)
                    .unwrap_or(usize::MAX);
                (idx, reg.to_owned(), SymOperand::Imm(value))
            })
            .collect();
        let (thread, reg, loc) = addr_clause;
        let idx = self
            .thread_names
            .iter()
            .position(|n| n == thread)
            .unwrap_or(usize::MAX);
        resolved.push((idx, reg.to_owned(), SymOperand::addr_of(loc)));
        self.test.conditions.push(Condition {
            kind: CondKind::Allowed,
            clauses: resolved,
        });
        self
    }

    /// The symbolic test (for inspection or re-serialization).
    pub fn symbolic(&self) -> &LitmusTest {
        &self.test
    }

    /// Compiles the test.
    ///
    /// # Errors
    ///
    /// See [`LitmusError`].
    pub fn build(self) -> Result<CompiledLitmus, LitmusError> {
        self.test.compile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samm_core::enumerate::{enumerate, EnumConfig};
    use samm_core::policy::Policy;

    #[test]
    fn builds_and_runs_sb() {
        let test = LitmusBuilder::new("SB")
            .thread("P0", |t| {
                t.store("x", 1).load("r0", "y");
            })
            .thread("P1", |t| {
                t.store("y", 1).load("r0", "x");
            })
            .forbid(&[("P0", "r0", 0), ("P1", "r0", 0)])
            .build()
            .unwrap();
        let sc = enumerate(
            &test.program,
            &Policy::sequential_consistency(),
            &EnumConfig::default(),
        )
        .unwrap();
        assert!(!test.conditions[0].observable_in(&sc.outcomes));
        let weak = enumerate(&test.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert!(test.conditions[0].observable_in(&weak.outcomes));
    }

    #[test]
    fn branches_and_labels_compose() {
        let test = LitmusBuilder::new("guard")
            .thread("P0", |t| {
                t.load("r0", "flag")
                    .branch_nz("r0", "have")
                    .mov("r1", 99)
                    .goto("end")
                    .label("have")
                    .load("r1", "data")
                    .label("end");
            })
            .build()
            .unwrap();
        assert_eq!(test.program.threads()[0].instrs().len(), 5);
    }

    #[test]
    fn pointer_helpers_produce_pointer_code() {
        let test = LitmusBuilder::new("ptr")
            .init_addr_of("p", "y")
            .thread("P0", |t| {
                t.load("r0", "p").store_via("r0", 7).load("r1", "y");
            })
            .build()
            .unwrap();
        let r = enumerate(&test.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        let o = r.outcomes.iter().next().unwrap();
        assert_eq!(
            o.reg(0, test.reg(0, "r1")),
            samm_core::ids::Value::new(7),
            "store through the pointer must be seen"
        );
    }

    #[test]
    fn unknown_thread_in_condition_fails_at_build() {
        let result = LitmusBuilder::new("bad")
            .thread("P0", |t| {
                t.store("x", 1);
            })
            .forbid(&[("P9", "r0", 0)])
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn store_reg_and_binop_compose() {
        let test = LitmusBuilder::new("calc")
            .thread("P0", |t| {
                t.mov("r0", 2)
                    .binop("r1", BinOp::Add, SymOperand::reg("r0"), SymOperand::Imm(3))
                    .store_reg("x", "r1")
                    .load("r2", "x");
            })
            .build()
            .unwrap();
        let r = enumerate(&test.program, &Policy::weak(), &EnumConfig::default()).unwrap();
        let o = r.outcomes.iter().next().unwrap();
        assert_eq!(o.reg(0, test.reg(0, "r2")), samm_core::ids::Value::new(5));
    }
}
