//! Executable conformance harness over the catalog.
//!
//! [`run_entry`] enumerates a catalog test under every model its verdicts
//! mention and compares observability of each condition against the
//! expected verdict — turning the paper's prose claims ("L6 cannot observe
//! S1") into pass/fail rows. The `experiments` binary of `samm-bench`
//! prints these rows as the reproduction record.

use std::collections::BTreeMap;
use std::fmt;

use samm_core::cache::{cached_enumerate, EnumCache};
use samm_core::enumerate::{enumerate, EnumConfig, EnumResult, EnumStats};
use samm_core::error::EnumError;
use samm_core::instr::Program;
use samm_core::outcome::OutcomeSet;
use samm_core::parallel::enumerate_parallel;
use samm_core::policy::Policy;
use samm_core::pruned::enumerate_pruned;

use crate::catalog::{CatalogEntry, ModelSel};

/// An enumeration engine: the serial [`enumerate`] or the work-stealing
/// [`enumerate_parallel`].
type Engine = fn(&Program, &Policy, &EnumConfig) -> Result<EnumResult, EnumError>;

/// An SC-equivalence certifier: returns `true` when it can prove the
/// program's behaviour set under the given (weak) policy equals its SC
/// behaviour set, licensing the harness to reuse a single SC enumeration
/// instead of enumerating under the weak model. `samm-analyze` provides
/// the static DRF/total-order certifier; `|_, _| false` disables the
/// short-circuit.
pub type Certifier<'a> = &'a dyn Fn(&Program, &Policy) -> bool;

/// One evaluated verdict.
#[derive(Debug, Clone)]
pub struct VerdictRow {
    /// The model evaluated.
    pub model: ModelSel,
    /// Condition text (`P0:r0=0 & P1:r0=0`).
    pub condition: String,
    /// Whether the paper/catalog expects the condition observable.
    pub expected_allowed: bool,
    /// Whether enumeration observed it.
    pub observed_allowed: bool,
    /// Total distinct outcomes under the model.
    pub outcomes: usize,
    /// Total distinct executions under the model.
    pub executions: usize,
    /// `true` when this row was answered by an SC-equivalence
    /// certificate instead of a fresh enumeration under the model: the
    /// outcome set (and the reported counts) are the SC run's.
    pub certified: bool,
    /// `true` when the enumeration behind this row was answered from the
    /// content-addressed [`EnumCache`] instead of running fresh (only
    /// possible via [`run_entry_cached`] and friends).
    pub cache_hit: bool,
    /// Statistics of the enumeration that answered this row. For
    /// [certified](VerdictRow::certified) rows these are the SC run's
    /// stats. With [`EnumConfig::observe`] set they carry an
    /// [`samm_core::obs::ObsStats`] snapshot in
    /// [`EnumStats::obs`].
    pub stats: EnumStats,
}

impl VerdictRow {
    /// Whether observation matched expectation.
    pub fn pass(&self) -> bool {
        self.expected_allowed == self.observed_allowed
    }
}

impl fmt::Display for VerdictRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:9} {:7} {} (expected {}, {} outcomes, {} executions)",
            if self.pass() { "ok" } else { "FAIL" },
            self.model.name(),
            if self.observed_allowed {
                "allowed"
            } else {
                "forbidden"
            },
            self.condition,
            if self.expected_allowed {
                "allowed"
            } else {
                "forbidden"
            },
            self.outcomes,
            self.executions,
        )?;
        if self.certified {
            write!(f, " [certified SC-equivalent]")?;
        }
        if self.cache_hit {
            write!(f, " [cached]")?;
        }
        Ok(())
    }
}

/// All evaluated verdicts of one catalog entry.
#[derive(Debug, Clone)]
pub struct EntryReport {
    /// Test name.
    pub name: String,
    /// One row per verdict, in catalog order.
    pub rows: Vec<VerdictRow>,
}

impl EntryReport {
    /// Whether every verdict matched.
    pub fn all_pass(&self) -> bool {
        self.rows.iter().all(VerdictRow::pass)
    }

    /// The failing rows, if any.
    pub fn failures(&self) -> Vec<&VerdictRow> {
        self.rows.iter().filter(|r| !r.pass()).collect()
    }
}

impl fmt::Display for EntryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

/// Runs one catalog entry: enumerates under each referenced model and
/// evaluates every verdict.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn run_entry(entry: &CatalogEntry, config: &EnumConfig) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate, None, None)
}

/// Like [`run_entry`], but consulting (and filling) the
/// content-addressed `cache` for every per-model enumeration. Rows
/// answered from the cache are marked [`VerdictRow::cache_hit`]; their
/// outcome sets and deterministic statistics are bit-identical to a
/// fresh run's, but their `stats` never carry scheduling counters (see
/// [`samm_core::cache`]).
///
/// # Errors
///
/// Propagates enumeration failures (which are never cached).
pub fn run_entry_cached(
    entry: &CatalogEntry,
    config: &EnumConfig,
    cache: &EnumCache,
) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate, None, Some(cache))
}

/// The work-stealing variant of [`run_entry_cached`]. The cache is
/// engine-transparent: an entry filled by the serial engine answers a
/// parallel query and vice versa.
///
/// # Errors
///
/// Propagates enumeration failures (which are never cached).
pub fn run_entry_cached_parallel(
    entry: &CatalogEntry,
    config: &EnumConfig,
    cache: &EnumCache,
) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate_parallel, None, Some(cache))
}

/// Like [`run_entry`], but consulting `certifier` before enumerating
/// under each non-SC model: models the certifier proves SC-equivalent
/// reuse a single SC enumeration, and their rows are marked
/// [`VerdictRow::certified`]. For certified rows the reported outcome
/// and execution counts are the SC run's: outcome sets are provably
/// equal, while execution counts are the SC run's by convention — the
/// DRF/TLO certificates preserve them exactly, robustness certificates
/// only promise outcome-set equality.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn run_entry_certified(
    entry: &CatalogEntry,
    config: &EnumConfig,
    certifier: Certifier<'_>,
) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate, Some(certifier), None)
}

/// The work-stealing variant of [`run_entry_certified`].
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn run_entry_certified_parallel(
    entry: &CatalogEntry,
    config: &EnumConfig,
    certifier: Certifier<'_>,
) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate_parallel, Some(certifier), None)
}

/// Like [`run_entry`], but enumerating on the work-stealing pool
/// ([`enumerate_parallel`] with [`EnumConfig::parallelism`] workers).
/// Verdicts, outcome counts and execution counts are identical to
/// [`run_entry`]'s — the engines are equivalent — only wall-clock
/// differs.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn run_entry_parallel(
    entry: &CatalogEntry,
    config: &EnumConfig,
) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate_parallel, None, None)
}

/// Like [`run_entry`], but enumerating with the prune-before-expand
/// engine ([`enumerate_pruned`]). Verdicts, outcome sets and execution
/// counts are identical to [`run_entry`]'s — the engines are
/// behaviour-equivalent — but the search-shape statistics (`explored`,
/// `forks`, `deduped`) count pruned-search work.
///
/// # Errors
///
/// Propagates enumeration failures.
pub fn run_entry_pruned(
    entry: &CatalogEntry,
    config: &EnumConfig,
) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate_pruned, None, None)
}

/// The prune-before-expand variant of [`run_entry_cached`]. The cache is
/// engine-transparent, so entries filled by any engine answer pruned
/// queries and vice versa.
///
/// # Errors
///
/// Propagates enumeration failures (which are never cached).
pub fn run_entry_cached_pruned(
    entry: &CatalogEntry,
    config: &EnumConfig,
    cache: &EnumCache,
) -> Result<EntryReport, EnumError> {
    run_entry_with(entry, config, enumerate_pruned, None, Some(cache))
}

/// The per-model answer assembled by [`run_entry_with`].
#[derive(Clone)]
struct ModelAnswer {
    outcomes: OutcomeSet,
    executions: usize,
    certified: bool,
    cache_hit: bool,
    stats: EnumStats,
}

fn run_entry_with(
    entry: &CatalogEntry,
    config: &EnumConfig,
    engine: Engine,
    certifier: Option<Certifier<'_>>,
    cache: Option<&EnumCache>,
) -> Result<EntryReport, EnumError> {
    // One enumeration under `policy`, via the shared content-addressed
    // cache when one was provided.
    let run = |policy: &Policy| -> Result<(OutcomeSet, EnumStats, bool), EnumError> {
        match cache {
            Some(cache) => {
                let (value, hit) =
                    cached_enumerate(cache, &entry.test.program, policy, config, engine)?;
                Ok((value.outcomes, value.stats, hit))
            }
            None => {
                let result = engine(&entry.test.program, policy, config)?;
                Ok((result.outcomes, result.stats, false))
            }
        }
    };
    let mut answers: BTreeMap<ModelSel, ModelAnswer> = BTreeMap::new();
    let mut sc_result: Option<ModelAnswer> = None;
    for model in entry.models() {
        let policy = model.policy();
        let certified =
            model != ModelSel::Sc && certifier.is_some_and(|c| c(&entry.test.program, &policy));
        if certified {
            if sc_result.is_none() {
                let (outcomes, stats, cache_hit) = run(&ModelSel::Sc.policy())?;
                sc_result = Some(ModelAnswer {
                    executions: stats.distinct_executions,
                    certified: false,
                    outcomes,
                    cache_hit,
                    stats,
                });
            }
            let mut answer = sc_result.clone().expect("just computed");
            answer.certified = true;
            answers.insert(model, answer);
        } else {
            let (outcomes, stats, cache_hit) = run(&policy)?;
            let answer = ModelAnswer {
                executions: stats.distinct_executions,
                certified: false,
                outcomes,
                cache_hit,
                stats,
            };
            if model == ModelSel::Sc {
                sc_result = Some(answer.clone());
            }
            answers.insert(model, answer);
        }
    }
    let rows = entry
        .verdicts
        .iter()
        .map(|v| {
            let answer = &answers[&v.model];
            let condition = &entry.test.conditions[v.condition];
            VerdictRow {
                model: v.model,
                condition: condition.text.clone(),
                expected_allowed: v.allowed,
                observed_allowed: condition.observable_in(&answer.outcomes),
                outcomes: answer.outcomes.len(),
                executions: answer.executions,
                certified: answer.certified,
                cache_hit: answer.cache_hit,
                stats: answer.stats,
            }
        })
        .collect();
    Ok(EntryReport {
        name: entry.test.name.clone(),
        rows,
    })
}

/// Runs a set of entries, collecting per-entry reports.
///
/// # Errors
///
/// Stops at the first enumeration failure.
pub fn run_all(
    entries: &[CatalogEntry],
    config: &EnumConfig,
) -> Result<Vec<EntryReport>, EnumError> {
    entries.iter().map(|e| run_entry(e, config)).collect()
}

/// Runs a set of entries on the work-stealing pool; see
/// [`run_entry_parallel`].
///
/// # Errors
///
/// Stops at the first enumeration failure.
pub fn run_all_parallel(
    entries: &[CatalogEntry],
    config: &EnumConfig,
) -> Result<Vec<EntryReport>, EnumError> {
    entries
        .iter()
        .map(|e| run_entry_parallel(e, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn fast_config() -> EnumConfig {
        EnumConfig {
            keep_executions: false,
            ..EnumConfig::default()
        }
    }

    #[test]
    fn sb_report_matches_catalog() {
        let report = run_entry(&catalog::sb(), &fast_config()).unwrap();
        assert!(report.all_pass(), "{report}");
        assert_eq!(report.rows.len(), 6);
    }

    #[test]
    fn rows_render_with_verdicts() {
        let report = run_entry(&catalog::sb(), &fast_config()).unwrap();
        let text = report.to_string();
        assert!(text.contains("SB"));
        assert!(text.contains("[ok]"));
        assert!(text.contains("forbidden"));
    }

    #[test]
    fn parallel_harness_agrees_with_serial() {
        let config = EnumConfig {
            parallelism: 4,
            ..fast_config()
        };
        for entry in [catalog::sb(), catalog::iriw(), catalog::fig10()] {
            let serial = run_entry(&entry, &config).unwrap();
            let parallel = run_entry_parallel(&entry, &config).unwrap();
            assert!(parallel.all_pass(), "{parallel}");
            assert_eq!(serial.rows.len(), parallel.rows.len());
            for (s, p) in serial.rows.iter().zip(&parallel.rows) {
                assert_eq!(s.observed_allowed, p.observed_allowed);
                assert_eq!(s.outcomes, p.outcomes);
                assert_eq!(s.executions, p.executions);
            }
        }
    }

    #[test]
    fn cached_harness_is_transparent() {
        let cache = EnumCache::new(256);
        let config = fast_config();
        for entry in [catalog::sb(), catalog::iriw()] {
            let fresh = run_entry(&entry, &config).unwrap();
            let cold = run_entry_cached(&entry, &config, &cache).unwrap();
            assert!(cold.rows.iter().all(|r| !r.cache_hit));
            let warm = run_entry_cached(&entry, &config, &cache).unwrap();
            assert!(warm.rows.iter().all(|r| r.cache_hit), "{warm}");
            // Hits must be transparent — same verdicts and counts as an
            // uncached run, whichever engine replays the query.
            let warm_parallel = run_entry_cached_parallel(&entry, &config, &cache).unwrap();
            for (f, rows) in fresh
                .rows
                .iter()
                .zip(
                    cold.rows
                        .iter()
                        .zip(warm.rows.iter().zip(&warm_parallel.rows)),
                )
                .map(|(f, (c, (w, p)))| (f, [c, w, p]))
            {
                for r in rows {
                    assert_eq!(f.observed_allowed, r.observed_allowed);
                    assert_eq!(f.outcomes, r.outcomes);
                    assert_eq!(f.executions, r.executions);
                    assert_eq!(f.stats.forks, r.stats.forks);
                }
            }
        }
        assert!(cache.stats().hits > 0);
        let text = run_entry_cached(&catalog::sb(), &config, &cache)
            .unwrap()
            .to_string();
        assert!(text.contains("[cached]"));
    }

    #[test]
    fn failures_lists_mismatches() {
        // Deliberately wrong verdict: SB 0/0 "forbidden" under weak.
        let mut entry = catalog::sb();
        entry.verdicts[4].allowed = false;
        let report = run_entry(&entry, &fast_config()).unwrap();
        assert!(!report.all_pass());
        assert_eq!(report.failures().len(), 1);
    }
}
