//! Cross-engine checks for the enumeration instrumentation counters.
//!
//! The serial and parallel engines apply the same closure to the same
//! fork set, so every scheduling-independent counter must agree between
//! them, and the serial engine must be bit-for-bit deterministic.

use samm_core::enumerate::{enumerate, EnumConfig};
use samm_core::parallel::enumerate_parallel;
use samm_litmus::catalog;

fn observed_config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        observe: true,
        ..EnumConfig::default()
    }
}

#[test]
fn sb_under_sc_records_dedup_hits_and_rule_applications() {
    let entry = catalog::sb();
    let config = observed_config();
    let sc = samm_litmus::catalog::ModelSel::Sc.policy();
    let result = enumerate(&entry.test.program, &sc, &config).expect("enumeration succeeds");
    // SB under SC interleaves two independent forks into the same final
    // graphs, so the canonical-key dedup must fire.
    assert!(result.stats.deduped > 0, "stats: {:?}", result.stats);
    let obs = result.stats.obs.expect("observe=true populates obs");
    // Every load resolution consults candidates() and runs the closure.
    assert!(obs.candidate_calls > 0, "obs: {obs:?}");
    assert!(obs.closure_rounds > 0, "obs: {obs:?}");
    // SC outcomes are justified by rule-b edges (observed loads precede
    // later overwrites of their source).
    assert!(obs.rule_b > 0, "obs: {obs:?}");
}

#[test]
fn disabled_observation_leaves_obs_empty() {
    let entry = catalog::sb();
    let config = EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    };
    let sc = samm_litmus::catalog::ModelSel::Sc.policy();
    let result = enumerate(&entry.test.program, &sc, &config).expect("enumeration succeeds");
    assert!(result.stats.obs.is_none());
}

#[test]
fn serial_and_parallel_counters_agree_across_the_catalog() {
    for entry in catalog::all() {
        for model in entry.models() {
            let policy = model.policy();
            let serial_cfg = EnumConfig {
                parallelism: 1,
                ..observed_config()
            };
            let parallel_cfg = EnumConfig {
                parallelism: 4,
                ..observed_config()
            };
            let ctx = format!("{} [{}]", entry.test.name, model.name());
            let serial = enumerate(&entry.test.program, &policy, &serial_cfg)
                .unwrap_or_else(|e| panic!("{ctx}: serial failed: {e}"));
            let parallel = enumerate_parallel(&entry.test.program, &policy, &parallel_cfg)
                .unwrap_or_else(|e| panic!("{ctx}: parallel failed: {e}"));
            assert_eq!(
                serial.outcomes, parallel.outcomes,
                "{ctx}: outcome sets diverge"
            );
            // Fork structure is engine-independent: both engines expand
            // the same dedup-pruned behaviour tree.
            assert_eq!(serial.stats.forks, parallel.stats.forks, "{ctx}: forks");
            assert_eq!(
                serial.stats.deduped, parallel.stats.deduped,
                "{ctx}: deduped"
            );
            assert_eq!(
                serial.stats.distinct_executions, parallel.stats.distinct_executions,
                "{ctx}: distinct executions"
            );
            assert_eq!(
                serial.stats.rolled_back, parallel.stats.rolled_back,
                "{ctx}: rolled back"
            );
            // Closure-rule counters (timings excluded) also match.
            let so = serial.stats.obs.expect("serial obs").counters();
            let po = parallel.stats.obs.expect("parallel obs").counters();
            assert_eq!(so.rule_a, po.rule_a, "{ctx}: rule a");
            assert_eq!(so.rule_b, po.rule_b, "{ctx}: rule b");
            assert_eq!(so.rule_c, po.rule_c, "{ctx}: rule c");
            assert_eq!(
                so.candidate_calls, po.candidate_calls,
                "{ctx}: candidate calls"
            );
            assert_eq!(
                so.candidate_stores, po.candidate_stores,
                "{ctx}: candidate stores"
            );
        }
    }
}

#[test]
fn serial_stats_are_deterministic() {
    let config = observed_config();
    for entry in [catalog::sb(), catalog::iriw(), catalog::fig10()] {
        for model in entry.models() {
            let policy = model.policy();
            let a = enumerate(&entry.test.program, &policy, &config).expect("run 1");
            let b = enumerate(&entry.test.program, &policy, &config).expect("run 2");
            let ctx = format!("{} [{}]", entry.test.name, model.name());
            assert_eq!(a.outcomes, b.outcomes, "{ctx}: outcomes");
            // Timings differ run to run; everything else is exact.
            let (mut sa, mut sb) = (a.stats, b.stats);
            let (oa, ob) = (
                sa.obs.take().expect("obs").counters(),
                sb.obs.take().expect("obs").counters(),
            );
            assert_eq!(sa, sb, "{ctx}: base stats");
            assert_eq!(oa, ob, "{ctx}: obs counters");
        }
    }
}
