//! Acceptance check for the witness explainer over the whole catalog.
//!
//! For every catalog entry and every paper verdict:
//! - an **allowed** outcome must yield a witness whose serialization and
//!   observation edges re-execute (via `Witness::verify`) to the same
//!   final register values, and
//! - a **forbidden** outcome must yield a refutation; when the guided
//!   search pinpoints a blocked load, the named closure rule is
//!   machine-checked (`BlockedRefutation::verify`) to empty that load's
//!   candidate set.

use samm_core::enumerate::EnumConfig;
use samm_core::explain::{find_witness, refute, Goal, Refutation, RefuteOutcome};
use samm_litmus::catalog;

fn config() -> EnumConfig {
    EnumConfig {
        keep_executions: false,
        ..EnumConfig::default()
    }
}

#[test]
fn every_allowed_catalog_outcome_has_a_replayable_witness() {
    let cfg = config();
    let mut witnesses = 0usize;
    for entry in catalog::all() {
        for verdict in entry.verdicts.iter().filter(|v| v.allowed) {
            let policy = verdict.model.policy();
            let condition = &entry.test.conditions[verdict.condition];
            let goal = Goal::new(condition.clauses.clone());
            let ctx = format!(
                "{} [{}] {}",
                entry.test.name,
                verdict.model.name(),
                condition.text
            );
            let witness = find_witness(&entry.test.program, &policy, &cfg, &goal)
                .unwrap_or_else(|e| panic!("{ctx}: enumeration failed: {e}"))
                .unwrap_or_else(|| panic!("{ctx}: allowed but no witness found"));
            assert!(
                goal.matches(&witness.outcome),
                "{ctx}: witness outcome {} does not satisfy the goal",
                witness.outcome
            );
            witness
                .verify(&entry.test.program, &policy, cfg.max_nodes_per_thread)
                .unwrap_or_else(|e| panic!("{ctx}: witness failed to replay: {e}"));
            witnesses += 1;
        }
    }
    // Every paper-allowed verdict in the catalog is witness-backed.
    assert!(witnesses >= 40, "only {witnesses} allowed verdicts checked");
}

#[test]
fn every_forbidden_catalog_outcome_is_refuted_and_machine_checked() {
    let cfg = config();
    let (mut blocked, mut exhaustive) = (0usize, 0usize);
    for entry in catalog::all() {
        for verdict in entry.verdicts.iter().filter(|v| !v.allowed) {
            let policy = verdict.model.policy();
            let condition = &entry.test.conditions[verdict.condition];
            let goal = Goal::new(condition.clauses.clone());
            let ctx = format!(
                "{} [{}] {}",
                entry.test.name,
                verdict.model.name(),
                condition.text
            );
            match refute(&entry.test.program, &policy, &cfg, &goal)
                .unwrap_or_else(|e| panic!("{ctx}: enumeration failed: {e}"))
            {
                RefuteOutcome::Refuted(Refutation::Blocked(b)) => {
                    b.verify(&entry.test.program, &policy, cfg.max_nodes_per_thread)
                        .unwrap_or_else(|e| panic!("{ctx}: refutation failed: {e}"));
                    blocked += 1;
                }
                RefuteOutcome::Refuted(Refutation::Exhaustive { .. }) => exhaustive += 1,
                RefuteOutcome::Observable(w) => {
                    panic!("{ctx}: forbidden but observable: {}", w.outcome)
                }
            }
        }
    }
    // The guided search explains most forbidden verdicts with a pinned
    // blocked load; branching goals legitimately fall back to
    // exhaustion, but they are the minority.
    assert!(blocked >= 10, "only {blocked} blocked refutations");
    assert!(
        blocked + exhaustive >= 30,
        "only {} forbidden verdicts checked",
        blocked + exhaustive
    );
}
